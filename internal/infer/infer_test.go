package infer

import (
	"testing"

	"salient/internal/dataset"
	"salient/internal/graph"
	"salient/internal/store"
	"salient/internal/train"
)

// fitted trains a small model so inference tests exercise a real predictor.
func fitted(t testing.TB) (*dataset.Dataset, *train.Trainer) {
	t.Helper()
	ds, err := dataset.Load(dataset.Arxiv, 0.05)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	tr, err := train.New(ds, train.Config{
		Arch: "SAGE", Hidden: 32, Layers: 2, Fanouts: []int{10, 5},
		BatchSize: 128, LR: 5e-3, Workers: 2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Fit(4); err != nil {
		t.Fatal(err)
	}
	return ds, tr
}

func TestSampledInferenceBeatsChance(t *testing.T) {
	ds, tr := fitted(t)
	pred, err := Sampled(tr.Model, ds, ds.Test, Options{Fanouts: []int{20, 20}, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	acc := Accuracy(pred, ds.Labels, ds.Test)
	chance := 1.0 / float64(ds.NumClasses)
	if acc < 4*chance {
		t.Fatalf("sampled test accuracy %.4f barely above chance %.4f", acc, chance)
	}
}

func TestSampledTracksFullNeighborhood(t *testing.T) {
	ds, tr := fitted(t)
	full := Full(tr.Model, ds, ds.Test)
	fullAcc := Accuracy(full, ds.Labels, ds.Test)

	// The paper's Table 6 finding: fanout 20 matches full-neighborhood
	// accuracy closely; tiny fanouts degrade it.
	s20, err := Sampled(tr.Model, ds, ds.Test, Options{Fanouts: []int{20, 20}, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	acc20 := Accuracy(s20, ds.Labels, ds.Test)
	if diff := fullAcc - acc20; diff > 0.03 {
		t.Fatalf("fanout-20 accuracy %.4f trails full %.4f by %.4f (>3%%)", acc20, fullAcc, diff)
	}

	s2, err := Sampled(tr.Model, ds, ds.Test, Options{Fanouts: []int{2, 2}, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	acc2 := Accuracy(s2, ds.Labels, ds.Test)
	if acc2 > acc20+0.01 {
		t.Fatalf("fanout-2 accuracy %.4f unexpectedly above fanout-20 %.4f", acc2, acc20)
	}
}

func TestPredictionsAlignedWithNodes(t *testing.T) {
	ds, tr := fitted(t)
	nodes := ds.Test[:200]
	pred, err := Sampled(tr.Model, ds, nodes, Options{Fanouts: []int{20, 20}, BatchSize: 64, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(pred) != len(nodes) {
		t.Fatalf("got %d predictions for %d nodes", len(pred), len(nodes))
	}
	for i, p := range pred {
		if p < 0 || int(p) >= ds.NumClasses {
			t.Fatalf("prediction %d for node %d out of class range", p, nodes[i])
		}
	}
	// Restricting inference to a subset must give the same predictions as
	// the full run restricted to that subset (determinism + alignment).
	again, err := Sampled(tr.Model, ds, nodes, Options{Fanouts: []int{20, 20}, BatchSize: 64, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range pred {
		if pred[i] == again[i] {
			same++
		}
	}
	if frac := float64(same) / float64(len(pred)); frac < 0.95 {
		t.Fatalf("only %.2f%% of repeated sampled predictions agree", 100*frac)
	}
}

// TestFullThroughStoreMatchesFull: reading the full feature matrix through
// a store changes accounting, never predictions.
func TestFullThroughStoreMatchesFull(t *testing.T) {
	ds, tr := fitted(t)
	want := Full(tr.Model, ds, ds.Test)
	st := store.NewFlat(ds)
	got, err := FullThrough(tr.Model, ds, ds.Test, st)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("prediction %d differs through the store: %d vs %d", i, got[i], want[i])
		}
	}
	if ss := st.Stats(); ss.Rows != int64(ds.G.N) {
		t.Fatalf("full inference gathered %d rows, want %d", ss.Rows, ds.G.N)
	}
}

func TestAccuracyHelper(t *testing.T) {
	labels := []int32{0, 1, 2, 3}
	nodes := []int32{0, 1, 2, 3}
	pred := []int32{0, 1, 0, 3}
	if got := Accuracy(pred, labels, nodes); got != 0.75 {
		t.Fatalf("accuracy = %v, want 0.75", got)
	}
	if got := Accuracy(nil, labels, nil); got != 0 {
		t.Fatalf("empty accuracy = %v, want 0", got)
	}
}

func TestAccuracyByDegreeBinsPartitionNodes(t *testing.T) {
	ds, tr := fitted(t)
	pred, err := Sampled(tr.Model, ds, ds.Test, Options{Fanouts: []int{10, 10}, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	bins := AccuracyByDegree(ds.G, pred, ds.Labels, ds.Test)
	if len(bins) == 0 {
		t.Fatal("no degree bins")
	}
	total := 0
	mass := 0.0
	prevHi := int32(0)
	for _, b := range bins {
		if b.Lo < prevHi {
			t.Fatalf("bins overlap: %+v after hi=%d", b, prevHi)
		}
		prevHi = b.Hi
		if b.Accuracy < 0 || b.Accuracy > 1 {
			t.Fatalf("accuracy out of range: %+v", b)
		}
		total += b.Count
		mass += b.MassFrac
	}
	if total != len(ds.Test) {
		t.Fatalf("bins cover %d nodes, want %d", total, len(ds.Test))
	}
	if mass < 0.999 || mass > 1.001 {
		t.Fatalf("bin mass sums to %v, want 1", mass)
	}
}

func TestBinOfBoundaries(t *testing.T) {
	cases := map[int32]int{0: 0, 1: 1, 2: 2, 3: 2, 4: 3, 7: 3, 8: 4, 1023: 10, 1024: 11}
	for d, want := range cases {
		if got := binOf(d); got != want {
			t.Fatalf("binOf(%d) = %d, want %d", d, got, want)
		}
	}
}

// TestSampledDynamicZeroDeltaBitIdentical: sampled inference through a
// Dynamic graph with no applied updates predicts exactly what the static
// path predicts — the inference leg of the tentpole bit-identity oracle.
// Full-neighborhood inference over a zero-delta snapshot agrees too (the
// seam's InferFull now takes any Topology).
func TestSampledDynamicZeroDeltaBitIdentical(t *testing.T) {
	ds, tr := fitted(t)
	nodes := ds.Test
	want, err := Sampled(tr.Model, ds, nodes, Options{Fanouts: []int{10, 5}, Workers: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := graph.NewDynamic(ds.G, graph.DynamicOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Sampled(tr.Model, ds, nodes, Options{Fanouts: []int{10, 5}, Workers: 2, Seed: 5, Graph: dyn})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("node %d: static %d, dynamic(0 deltas) %d", nodes[i], want[i], got[i])
		}
	}
	full := tr.Model.InferFull(ds.G, ds.Feat.Clone())
	fullSnap := tr.Model.InferFull(dyn.Snapshot(), ds.Feat.Clone())
	if d := full.MaxAbsDiff(fullSnap); d != 0 {
		t.Fatalf("full inference diverges on a zero-delta snapshot by %v", d)
	}
}

// TestSampledFusedBitIdentical: fused sampled inference must predict exactly
// what the staged path predicts — same samples, same widened values, same
// edge-order aggregation.
func TestSampledFusedBitIdentical(t *testing.T) {
	ds, tr := fitted(t)
	nodes := ds.Test
	if len(nodes) > 300 {
		nodes = nodes[:300]
	}
	opts := Options{Fanouts: []int{10, 5}, Workers: 2, Seed: 11}
	staged, err := Sampled(tr.Model, ds, nodes, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Fused = true
	fused, err := Sampled(tr.Model, ds, nodes, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range staged {
		if staged[i] != fused[i] {
			t.Fatalf("node %d: staged prediction %d, fused %d", nodes[i], staged[i], fused[i])
		}
	}
	// An unfusable architecture is rejected up front.
	gat, err := train.New(ds, train.Config{
		Arch: "GAT", Hidden: 16, Layers: 2, Fanouts: []int{5, 5},
		BatchSize: 64, Workers: 1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Sampled(gat.Model, ds, nodes[:4], Options{Fanouts: []int{5, 5}, Fused: true}); err == nil {
		t.Fatal("fused inference accepted for GAT")
	}
}
