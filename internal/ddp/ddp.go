// Package ddp provides distributed data-parallel GNN training (paper §6,
// Figure 5) in two forms that share one replica/seed partitioning scheme
// (StepsFor, ShardSeeds):
//
//   - Cost-model simulators. SimulateEpoch, SimulateBaselineEpoch and
//     ScalingCurve reproduce the paper's full-scale timing claims in
//     calibrated virtual time: R simulated V100 replicas run the pipelined
//     (or blocking baseline) schedule on their shard of mini-batches and
//     synchronize per step on a modeled ring all-reduce over 10 GigE.
//
//   - An executing Trainer. R real model replicas run concurrently in
//     goroutines, each feeding from its own prep executor stream over its
//     deterministic shard of the epoch, synchronized per step by
//     AverageGradients + identical per-replica optimizer steps, with
//     straggler (barrier-wait) time accounted the way the simulator's cost
//     model accounts exposed all-reduce. Union is its serial single-replica
//     oracle: R-replica execution is bit-identical to the union batch
//     schedule run on one replica.
//
// AverageGradients and SyncParams are the shared semantic core: the former
// is DDP's gradient all-reduce on real models, the latter its parameter
// broadcast at initialization.
package ddp

import (
	"salient/internal/device"
	"salient/internal/event"
	"salient/internal/nn"
	"salient/internal/rng"
)

const (
	// computeVarDamp scales how much of the neighborhood-size variation
	// reaches GPU compute time (dense work depends mostly on fixed batch
	// and hidden dimensions).
	computeVarDamp = 0.5
	// allReduceOverlap is the fraction of the fastest replica's backward
	// pass available to hide bucketed all-reduce communication behind.
	allReduceOverlap = 0.25
)

// Result summarizes a simulated multi-GPU epoch.
type Result struct {
	Replicas  int
	Steps     int     // synchronized gradient steps (StepsFor)
	Epoch     float64 // seconds
	Compute   float64 // per-replica GPU busy time (max over replicas)
	AllReduce float64 // total all-reduce time on the critical path
}

// SimulateEpoch models one SALIENT training epoch on `replicas` GPUs spread
// over machines with gpusPerMachine GPUs each. The global batch count is
// split evenly; per-GPU batch size stays fixed (the paper scales effective
// batch size with GPU count). Replicas run the pipelined schedule and
// synchronize on a per-step gradient all-reduce.
func SimulateEpoch(pr device.Profile, cal device.DatasetCal, replicas, gpusPerMachine int, seed uint64) Result {
	if replicas < 1 {
		panic("ddp: need at least one replica") //lint:allow panicdiscipline documented precondition: replica count is a compile-time-style config error
	}
	steps := StepsFor(cal.Batches, replicas)
	r := rng.New(seed)

	type replica struct {
		pool     *event.Pool
		copyS    *event.Serial
		compS    *event.Serial
		slotFree []float64
	}
	reps := make([]*replica, replicas)
	for i := range reps {
		reps[i] = &replica{
			pool:     event.NewPool("prep", pr.Workers),
			copyS:    event.NewSerial("copy"),
			compS:    event.NewSerial("compute"),
			slotFree: make([]float64, steps),
		}
	}

	contend := 1 + pr.SampleContentionSalient*float64(pr.Workers-1)
	slots := 2 * pr.Workers
	nb := float64(cal.Batches)
	allReduceDur := pr.RingAllReduce(cal.GradBytes, replicas, gpusPerMachine)

	var res Result
	res.Replicas = replicas
	res.Steps = steps
	barrier := pr.EpochStartup

	for s := 0; s < steps; s++ {
		stepEnd := 0.0
		var minTrain float64
		for i, rep := range reps {
			f := device.LogNormalFactor(r.Float64(), cal.SizeCV)
			prepDur := (cal.SampleSec/cal.SampleSpeedup + cal.SliceSec) / nb * f * contend
			// Steady-state epochs (the paper averages over 25): the first
			// slots-worth of batches were prefetched during the previous
			// epoch's tail, so they are ready immediately; later batches
			// wait for a recycled pinned slot.
			var prepEnd float64
			if s >= slots {
				_, prepEnd, _ = rep.pool.RunDynamic(rep.slotFree[s-slots], prepDur)
			}

			td := pr.TransferTime(int64(cal.TransferBytes/nb*f), pr.PipelinedTransferEff)
			_, tEnd := rep.copyS.Run(prepEnd, td)
			rep.slotFree[s] = tEnd

			// GPU compute varies less than neighborhood size: dense-layer
			// work is dominated by the fixed batch and hidden dimensions,
			// only the aggregation scales with sampled edges.
			fc := 1 + (f-1)*computeVarDamp
			tr := cal.TrainSec/nb*fc + pr.KernelLaunchOverhead
			// Compute cannot start before the previous step's barrier
			// (gradients must be applied before the next forward).
			readyC := event.MaxAll(tEnd, barrier)
			_, cEnd := rep.compS.Run(readyC, tr)
			if cEnd > stepEnd {
				stepEnd = cEnd
			}
			if i == 0 || tr < minTrain {
				minTrain = tr
			}
		}
		// Ring all-reduce across all replicas. DDP buckets gradients and
		// overlaps their reduction with the tail of backward, so only the
		// non-overlapped remainder extends the critical path.
		exposed := allReduceDur - allReduceOverlap*minTrain
		if exposed < 0 {
			exposed = 0
		}
		barrier = stepEnd + exposed
		res.AllReduce += exposed
		for _, rep := range reps {
			rep.compS.Run(stepEnd, exposed)
		}
	}
	res.Epoch = barrier
	for _, rep := range reps {
		if b := rep.compS.Busy(); b > res.Compute {
			res.Compute = b
		}
	}
	return res
}

// SimulateBaselineEpoch models one PyG-baseline training epoch on
// `replicas` GPUs: each replica runs the blocking workflow of Figure 1(a)
// on its shard (sampling workers prefetch, but slicing, transfer at 75%
// DMA efficiency, and training all block the main thread), and replicas
// synchronize on a per-step gradient all-reduce with no backward overlap.
func SimulateBaselineEpoch(pr device.Profile, cal device.DatasetCal, replicas, gpusPerMachine int, seed uint64) Result {
	if replicas < 1 {
		panic("ddp: need at least one replica") //lint:allow panicdiscipline documented precondition: replica count is a compile-time-style config error
	}
	steps := StepsFor(cal.Batches, replicas)
	r := rng.New(seed)

	p := pr.Workers
	type replica struct {
		pool      *event.Pool
		sampleEnd []float64
		main      float64
	}
	reps := make([]*replica, replicas)
	for i := range reps {
		reps[i] = &replica{
			pool:      event.NewPool("sample", p),
			sampleEnd: make([]float64, steps),
			main:      pr.EpochStartup,
		}
	}

	sampleContend := 1 + pr.SampleContentionPyG*float64(p-1)
	sliceSpeedup := device.ParallelSpeedup(pr.SliceContentionPyG, p)
	nb := float64(cal.Batches)
	allReduceDur := pr.RingAllReduce(cal.GradBytes, replicas, gpusPerMachine)

	// Sampling workers prefetch the whole shard with static assignment;
	// the DataLoader respawns them each epoch, so no warm start.
	type draw struct{ sample, slice, bytes, train float64 }
	draws := make([][]draw, replicas)
	for i, rep := range reps {
		draws[i] = make([]draw, steps)
		for s := 0; s < steps; s++ {
			f := device.LogNormalFactor(r.Float64(), cal.SizeCV)
			fc := 1 + (f-1)*computeVarDamp
			d := draw{
				sample: cal.SampleSec / nb * f * sampleContend,
				slice:  cal.SliceSec / nb * f / sliceSpeedup,
				bytes:  cal.TransferBytes / nb * f,
				train:  cal.TrainSec/nb*fc + pr.KernelLaunchOverhead,
			}
			draws[i][s] = d
			_, rep.sampleEnd[s] = rep.pool.RunOn(s%p, pr.EpochStartup, d.sample)
		}
	}

	var res Result
	res.Replicas = replicas
	res.Steps = steps
	barrier := pr.EpochStartup
	for s := 0; s < steps; s++ {
		stepEnd := 0.0
		for i, rep := range reps {
			d := draws[i][s]
			if rep.sampleEnd[s] > rep.main {
				rep.main = rep.sampleEnd[s]
			}
			rep.main += d.slice
			rep.main += pr.TransferTime(int64(d.bytes), pr.BaselineTransferEff)
			if barrier > rep.main {
				rep.main = barrier
			}
			rep.main += d.train
			res.Compute += d.train
			if rep.main > stepEnd {
				stepEnd = rep.main
			}
		}
		barrier = stepEnd + allReduceDur
		res.AllReduce += allReduceDur
		for _, rep := range reps {
			rep.main = barrier
		}
	}
	res.Epoch = barrier
	res.Compute /= float64(replicas)
	return res
}

// ScalingCurve simulates epochs for each replica count and returns epoch
// times in order (the Figure 5 series).
func ScalingCurve(pr device.Profile, cal device.DatasetCal, replicaCounts []int, gpusPerMachine int, seed uint64) []Result {
	out := make([]Result, len(replicaCounts))
	for i, n := range replicaCounts {
		out[i] = SimulateEpoch(pr, cal, n, gpusPerMachine, seed)
	}
	return out
}

// AverageGradients averages parameter gradients across replicas in place:
// after the call every replica holds the same averaged gradients. This is
// the semantic core of DDP's all-reduce, used to validate data-parallel
// equivalence with real models.
func AverageGradients(replicas [][]*nn.Param) {
	if len(replicas) == 0 {
		return
	}
	n := len(replicas[0])
	inv := float32(1) / float32(len(replicas))
	for p := 0; p < n; p++ {
		acc := replicas[0][p].G
		for r := 1; r < len(replicas); r++ {
			acc.Add(replicas[r][p].G)
		}
		acc.Scale(inv)
		for r := 1; r < len(replicas); r++ {
			replicas[r][p].G.Copy(acc)
		}
	}
}

// SyncParams copies replica 0's parameter values into all other replicas
// (the DDP broadcast at initialization).
func SyncParams(replicas [][]*nn.Param) {
	if len(replicas) < 2 {
		return
	}
	for p := range replicas[0] {
		for r := 1; r < len(replicas); r++ {
			replicas[r][p].W.Copy(replicas[0][p].W)
		}
	}
}
