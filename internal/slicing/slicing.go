// Package slicing extracts the feature and label sub-tensors for a sampled
// mini-batch and stages them in pinned host buffers ready for transfer.
//
// This is the second half of batch preparation (paper §3.2, §4.2). The
// kernels here embody the baseline's conventional optimizations — row-major
// feature storage for cache-efficient row copies, half-precision host
// features to halve bandwidth — plus SALIENT's changes: a deliberately
// serial slice kernel per worker (better cache locality and no inter-thread
// contention than PyTorch's internally parallel slicing), writing directly
// into reusable pinned staging buffers so the main process never copies.
package slicing

import (
	"fmt"

	"salient/internal/half"
	"salient/internal/tensor"
)

// Pinned is a pinned host staging buffer for one prepared mini-batch: the
// sliced feature rows (half precision, as stored on the host), the seed
// labels, and bookkeeping for reuse.
//
// In CUDA terms this is page-locked memory that the DMA engine can read
// directly; here it is the unit of reuse in the buffer pool, and the device
// simulation charges DMA-rate transfer for it (versus the slower pageable
// path for non-pinned sources).
type Pinned struct {
	Feat   []half.Float16 // rows × featDim
	Labels []int32        // seed labels
	Rows   int
	Dim    int
}

// NewPinned allocates a staging buffer for up to maxRows rows of featDim
// features and maxBatch labels.
func NewPinned(maxRows, featDim, maxBatch int) *Pinned {
	return &Pinned{
		Feat:   make([]half.Float16, maxRows*featDim),
		Labels: make([]int32, maxBatch),
		Dim:    featDim,
	}
}

// ensure grows the buffer if the batch needs more rows than ever seen.
func (p *Pinned) ensure(rows, dim, batch int) {
	if need := rows * dim; cap(p.Feat) < need {
		p.Feat = make([]half.Float16, need)
	}
	p.Feat = p.Feat[:rows*dim]
	if cap(p.Labels) < batch {
		p.Labels = make([]int32, batch)
	}
	p.Labels = p.Labels[:batch]
	p.Rows = rows
	p.Dim = dim
}

// Bytes returns the payload size of the staged batch in bytes.
func (p *Pinned) Bytes() int64 {
	return int64(len(p.Feat))*2 + int64(len(p.Labels))*4
}

// SliceHalf gathers the feature rows for nodeIDs out of the half-precision
// host feature matrix into dst, and the labels for the first batch entries
// of nodeIDs (the seed prefix). This is the SALIENT serial kernel: one
// worker slices one whole batch, contiguously, with no synchronization.
func SliceHalf(dst *Pinned, feat []half.Float16, featDim int, labels []int32, nodeIDs []int32, batch int) error {
	if batch > len(nodeIDs) {
		return fmt.Errorf("slicing: batch %d > nodes %d", batch, len(nodeIDs))
	}
	dst.ensure(len(nodeIDs), featDim, batch)
	for i, id := range nodeIDs {
		srcRow := feat[int(id)*featDim : (int(id)+1)*featDim]
		copy(dst.Feat[i*featDim:(i+1)*featDim], srcRow)
	}
	for i := 0; i < batch; i++ {
		dst.Labels[i] = labels[nodeIDs[i]]
	}
	return nil
}

// SliceHalfStriped is the PyTorch-style parallel slice kernel: the row range
// is split into nWorkers static stripes processed by the provided runner
// (in production PyTorch, OpenMP threads). It exists for the Table 2
// comparison; SALIENT itself uses SliceHalf per batch-preparation worker.
//
// run is called once per stripe with the stripe bounds and must execute the
// stripes (possibly concurrently) before returning.
func SliceHalfStriped(dst *Pinned, feat []half.Float16, featDim int, labels []int32, nodeIDs []int32, batch, nWorkers int, run func(stripes []func())) error {
	if batch > len(nodeIDs) {
		return fmt.Errorf("slicing: batch %d > nodes %d", batch, len(nodeIDs))
	}
	if nWorkers < 1 {
		nWorkers = 1
	}
	dst.ensure(len(nodeIDs), featDim, batch)
	n := len(nodeIDs)
	stripes := make([]func(), 0, nWorkers)
	for w := 0; w < nWorkers; w++ {
		lo := n * w / nWorkers
		hi := n * (w + 1) / nWorkers
		if lo == hi {
			continue
		}
		stripes = append(stripes, func() {
			for i := lo; i < hi; i++ {
				id := nodeIDs[i]
				copy(dst.Feat[i*featDim:(i+1)*featDim], feat[int(id)*featDim:(int(id)+1)*featDim])
			}
		})
	}
	run(stripes)
	for i := 0; i < batch; i++ {
		dst.Labels[i] = labels[nodeIDs[i]]
	}
	return nil
}

// DecodeFeatures converts a staged half-precision feature block into the
// float32 tensor used by compute (the GPU-side widening in the paper:
// transfers stay half-width, kernels run single precision).
func DecodeFeatures(dst *tensor.Dense, p *Pinned) {
	if dst.Rows != p.Rows || dst.Cols != p.Dim {
		panic(fmt.Sprintf("slicing: decode shape %dx%d vs staged %dx%d", dst.Rows, dst.Cols, p.Rows, p.Dim))
	}
	half.DecodeSlice(dst.Data, p.Feat)
}

// Pool is a fixed-size recycling pool of pinned staging buffers. SALIENT
// bounds in-flight batches by the number of slots; a worker takes a free
// slot, fills it, hands it to the training loop, and the loop returns it
// after the (simulated) transfer completes.
type Pool struct {
	free chan *Pinned
}

// NewPool creates a pool with n pre-allocated buffers.
func NewPool(n, maxRows, featDim, maxBatch int) *Pool {
	p := &Pool{free: make(chan *Pinned, n)}
	for i := 0; i < n; i++ {
		p.free <- NewPinned(maxRows, featDim, maxBatch)
	}
	return p
}

// Get blocks until a free buffer is available.
func (p *Pool) Get() *Pinned { return <-p.free }

// TryGet returns a buffer if one is free.
func (p *Pool) TryGet() (*Pinned, bool) {
	select {
	case b := <-p.free:
		return b, true
	default:
		return nil, false
	}
}

// Put returns a buffer to the pool. Putting more buffers than the pool size
// panics, which catches double-free bugs early.
func (p *Pool) Put(b *Pinned) {
	select {
	case p.free <- b:
	default:
		panic("slicing: pool overflow (double Put?)")
	}
}
