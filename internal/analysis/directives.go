package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"

	goanalysis "golang.org/x/tools/go/analysis"
)

// AnalyzerNames is the set of analyzer names a //lint:allow directive may
// reference. Kept in one place so the directives analyzer and the allow
// index can't drift from the suite in All.
var AnalyzerNames = []string{
	"topologyseam",
	"arenalifecycle",
	"noalloc",
	"determinism",
	"snapshotpin",
	"panicdiscipline",
	"directives",
}

func knownAnalyzer(name string) bool {
	for _, n := range AnalyzerNames {
		if n == name {
			return true
		}
	}
	return false
}

// allowRe matches a well-formed suppression directive:
//
//	//lint:allow <analyzer> <reason>
//
// The reason is mandatory — see the directives analyzer.
var allowRe = regexp.MustCompile(`^//lint:allow\s+([A-Za-z0-9_]+)(?:\s+(.*))?$`)

// noallocDirective is the annotation that opts a function into the noalloc
// analyzer. It must appear in a function declaration's doc comment.
const noallocDirective = "//salient:noalloc"

// allowSite is one //lint:allow occurrence.
type allowSite struct {
	analyzer string
	file     string
	line     int
}

// allowRange covers a whole declaration (directive in a func doc comment).
type allowRange struct {
	analyzer string
	pos, end token.Pos
}

// allowIndex answers "is this diagnostic suppressed?" for one package. An
// inline directive suppresses diagnostics on its own line and on the line
// directly below it; a directive in a function's doc comment suppresses the
// analyzer for the whole function.
type allowIndex struct {
	fset  *token.FileSet
	sites []allowSite
	spans []allowRange
}

// buildAllowIndex scans every file in the pass for //lint:allow directives.
func buildAllowIndex(pass *goanalysis.Pass) *allowIndex {
	idx := &allowIndex{fset: pass.Fset}
	for _, f := range pass.Files {
		docs := make(map[*ast.CommentGroup]*ast.FuncDecl)
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
				docs[fd.Doc] = fd
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil || strings.TrimSpace(m[2]) == "" {
					continue // malformed; the directives analyzer reports it
				}
				if fd := docs[cg]; fd != nil {
					idx.spans = append(idx.spans, allowRange{analyzer: m[1], pos: fd.Pos(), end: fd.End()})
					continue
				}
				p := pass.Fset.Position(c.Pos())
				idx.sites = append(idx.sites, allowSite{analyzer: m[1], file: p.Filename, line: p.Line})
			}
		}
	}
	return idx
}

// allowed reports whether a diagnostic from the named analyzer at pos is
// suppressed by a //lint:allow directive.
func (idx *allowIndex) allowed(name string, pos token.Pos) bool {
	p := idx.fset.Position(pos)
	for _, s := range idx.sites {
		if s.analyzer == name && s.file == p.Filename && (s.line == p.Line || s.line == p.Line-1) {
			return true
		}
	}
	for _, r := range idx.spans {
		if r.analyzer == name && pos >= r.pos && pos < r.end {
			return true
		}
	}
	return false
}

// report emits a diagnostic unless a //lint:allow directive covers it.
func report(pass *goanalysis.Pass, idx *allowIndex, pos token.Pos, format string, args ...interface{}) {
	if idx.allowed(pass.Analyzer.Name, pos) {
		return
	}
	pass.Reportf(pos, format, args...)
}

// isTestFile reports whether the file containing pos is a _test.go file.
// The data-path contracts protect production code; white-box tests may poke
// representation internals by design.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// pkgBase returns the last path element of the package under analysis,
// which is how the scoped analyzers (determinism, snapshotpin) name the
// packages they police — it matches both the real tree and the testdata
// replicas under internal/analysis/testdata/src.
func pkgBase(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// Directives validates the suite's two comment directives: //lint:allow
// must name a known analyzer and give a reason, and //salient:noalloc must
// be attached to a function declaration's doc comment.
var Directives = &goanalysis.Analyzer{
	Name: "directives",
	Doc:  "check that //lint:allow and //salient:noalloc directives are well-formed",
	Run:  runDirectives,
}

var (
	spacedAllowRe   = regexp.MustCompile(`^//\s+lint:allow\b`)
	spacedNoallocRe = regexp.MustCompile(`^//\s+salient:noalloc\b`)
)

func runDirectives(pass *goanalysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		funcDocs := make(map[*ast.CommentGroup]bool)
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
				funcDocs[fd.Doc] = true
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				switch {
				case spacedAllowRe.MatchString(text):
					pass.Reportf(c.Pos(), "malformed directive %q: write //lint:allow with no space after //", text)
				case spacedNoallocRe.MatchString(text):
					pass.Reportf(c.Pos(), "malformed directive %q: write //salient:noalloc with no space after //", text)
				case strings.HasPrefix(text, "//lint:allow"):
					m := allowRe.FindStringSubmatch(text)
					switch {
					case m == nil:
						pass.Reportf(c.Pos(), "malformed //lint:allow directive %q: want //lint:allow <analyzer> <reason>", text)
					case !knownAnalyzer(m[1]):
						pass.Reportf(c.Pos(), "//lint:allow names unknown analyzer %q", m[1])
					case strings.TrimSpace(m[2]) == "":
						pass.Reportf(c.Pos(), "//lint:allow %s is missing its reason: document why the %s contract does not apply here", m[1], m[1])
					}
				case strings.HasPrefix(text, noallocDirective):
					if rest := text[len(noallocDirective):]; rest != "" && !strings.HasPrefix(rest, " ") {
						break // some other directive sharing the prefix
					}
					if !funcDocs[cg] {
						pass.Reportf(c.Pos(), "//salient:noalloc must appear in a function declaration's doc comment")
					}
				}
			}
		}
	}
	return nil, nil
}

// noallocFuncs returns the function declarations in the pass annotated with
// //salient:noalloc.
func noallocFuncs(pass *goanalysis.Pass) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if c.Text == noallocDirective || strings.HasPrefix(c.Text, noallocDirective+" ") {
					out = append(out, fd)
					break
				}
			}
		}
	}
	return out
}
