package graph

import (
	"fmt"
	"testing"

	"salient/internal/transport"
)

// viewHandler serves adjacency straight from a View — the test stand-in for
// a remote host owning part of the graph.
type viewHandler struct {
	v     View
	hello transport.Hello
}

func newViewHandler(v View) *viewHandler {
	return &viewHandler{v: v, hello: transport.Hello{
		Proto:        transport.ProtoVersion,
		NumNodes:     int(v.NumNodes()),
		NumEdges:     v.NumEdges(),
		GraphVersion: v.Version(),
	}}
}

func (h *viewHandler) Hello() transport.Hello { return h.hello }

func (h *viewHandler) FetchRows(ids []int32, dst *transport.Rows) error {
	return fmt.Errorf("viewHandler serves no rows")
}

func (h *viewHandler) FetchNeighbors(ids []int32, dst *transport.Adjacency) error {
	dst.Reset()
	dst.Ptr = append(dst.Ptr, 0)
	for _, id := range ids {
		if id < 0 || id >= h.v.NumNodes() {
			return fmt.Errorf("node %d out of range", id)
		}
		dst.Adj = append(dst.Adj, h.v.Neighbors(id)...)
		dst.Ptr = append(dst.Ptr, int64(len(dst.Adj)))
	}
	return nil
}

// partTestGraph builds a small deterministic graph and a 3-way round-robin
// assignment.
func partTestGraph(t *testing.T) (View, []int32) {
	t.Helper()
	var src, dst []int32
	const n = 64
	for i := int32(0); i < n; i++ {
		for k := int32(1); k <= 3; k++ {
			src = append(src, i)
			dst = append(dst, (i*7+k)%n)
		}
	}
	g, err := FromEdgeList(n, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	part := make([]int32, n)
	for i := range part {
		part[i] = int32(i % 3)
	}
	return Static(g).View(), part
}

func partitionedOver(t *testing.T, v View, part []int32, home int32) (*Partitioned, []transport.Conn) {
	t.Helper()
	h := newViewHandler(v)
	peers := make([]transport.Conn, 3)
	for p := range peers {
		if int32(p) != home {
			peers[p] = transport.Loopback(h)
		}
	}
	pv, err := NewPartitioned(v, part, home, peers)
	if err != nil {
		t.Fatal(err)
	}
	return pv, peers
}

// TestPartitionedMatchesLocalView: every node's degree and adjacency through
// the partitioned view — home-native or wire-fetched — is identical to the
// full local view's.
func TestPartitionedMatchesLocalView(t *testing.T) {
	v, part := partTestGraph(t)
	for home := int32(0); home < 3; home++ {
		pv, _ := partitionedOver(t, v, part, home)
		if pv.NumNodes() != v.NumNodes() || pv.NumEdges() != v.NumEdges() || pv.Version() != v.Version() {
			t.Fatalf("home %d: shape/version disagree with local view", home)
		}
		for id := int32(0); id < v.NumNodes(); id++ {
			if got, want := pv.Degree(id), v.Degree(id); got != want {
				t.Fatalf("home %d node %d: degree %d, want %d", home, id, got, want)
			}
			got, want := pv.Neighbors(id), v.Neighbors(id)
			if len(got) != len(want) {
				t.Fatalf("home %d node %d: %d neighbors, want %d", home, id, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("home %d node %d: neighbor %d is %d, want %d", home, id, i, got[i], want[i])
				}
			}
		}
		if err := pv.Err(); err != nil {
			t.Fatalf("home %d: sticky error after clean reads: %v", home, err)
		}
	}
}

// TestPartitionedMemoizesRemoteAdjacency: a remote neighborhood crosses the
// wire at most once per view — re-reading fetched nodes issues no new calls.
func TestPartitionedMemoizesRemoteAdjacency(t *testing.T) {
	v, part := partTestGraph(t)
	pv, _ := partitionedOver(t, v, part, 0)
	for id := int32(0); id < v.NumNodes(); id++ {
		pv.Neighbors(id)
	}
	st := pv.Stats()
	if st.FetchedIDs == 0 || st.WireBytes == 0 {
		t.Fatalf("no remote fetch accounting: %+v", st)
	}
	for id := int32(0); id < v.NumNodes(); id++ {
		pv.Neighbors(id)
		pv.Degree(id)
	}
	if again := pv.Stats(); again != st {
		t.Fatalf("re-reading memoized adjacency issued fetches: %+v -> %+v", st, again)
	}
}

// TestPartitionedPrefetchBatches: Prefetch fetches all unmemoized remote IDs
// in one batched call per owning part, and charges exactly the codec's frame
// arithmetic for them.
func TestPartitionedPrefetchBatches(t *testing.T) {
	v, part := partTestGraph(t)
	pv, _ := partitionedOver(t, v, part, 0)
	ids := make([]int32, v.NumNodes())
	for i := range ids {
		ids[i] = int32(i)
	}
	if err := pv.Prefetch(ids); err != nil {
		t.Fatal(err)
	}
	st := pv.Stats()
	if st.FetchCalls != 2 {
		t.Fatalf("prefetch issued %d calls for 2 remote parts", st.FetchCalls)
	}
	var wantIDs, wantBytes, total int64
	perPart := make(map[int32][]int32)
	for _, id := range ids {
		if part[id] != 0 {
			perPart[part[id]] = append(perPart[part[id]], id)
		}
	}
	for _, batch := range perPart {
		var adj int64
		for _, id := range batch {
			adj += int64(len(v.Neighbors(id)))
		}
		wantIDs += int64(len(batch))
		wantBytes += transport.NeighReqFrameBytes(len(batch)) + transport.NeighRespFrameBytes(len(batch), adj)
		total += adj
	}
	if st.FetchedIDs != wantIDs {
		t.Fatalf("fetched %d ids, want %d", st.FetchedIDs, wantIDs)
	}
	if st.WireBytes != wantBytes {
		t.Fatalf("wire bytes %d, want %d (frame arithmetic over %d adjacency entries)", st.WireBytes, wantBytes, total)
	}
	// Everything is memoized now: per-node reads are wire-free.
	for _, id := range ids {
		pv.Neighbors(id)
	}
	if again := pv.Stats(); again != st {
		t.Fatalf("post-prefetch reads issued fetches: %+v -> %+v", st, again)
	}
}

// TestPartitionedStickyError: a dead peer surfaces as empty adjacency plus a
// sticky typed error — never garbage, never a panic.
func TestPartitionedStickyError(t *testing.T) {
	v, part := partTestGraph(t)
	pv, peers := partitionedOver(t, v, part, 0)
	for _, c := range peers {
		if c != nil {
			if err := c.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
	var remote int32 = -1
	for id := int32(0); id < v.NumNodes(); id++ {
		if part[id] != 0 {
			remote = id
			break
		}
	}
	if ns := pv.Neighbors(remote); ns != nil {
		t.Fatalf("dead peer served %d neighbors", len(ns))
	}
	err := pv.Err()
	if err == nil {
		t.Fatal("no sticky error after failed fetch")
	}
	if kind, ok := transport.KindOf(err); !ok || kind != transport.ErrClosed {
		t.Fatalf("sticky error %v, want typed %v", err, transport.ErrClosed)
	}
	if err := pv.Prefetch([]int32{remote}); err == nil {
		t.Fatal("prefetch through dead peer succeeded")
	}
}

// TestPartitionedRejectsMismatchedPeer: a peer whose handshake disagrees on
// graph shape or version is a typed mismatch at construction.
func TestPartitionedRejectsMismatchedPeer(t *testing.T) {
	v, part := partTestGraph(t)
	h := newViewHandler(v)
	wrong := *h
	wrong.hello.GraphVersion++
	peers := []transport.Conn{nil, transport.Loopback(&wrong), transport.Loopback(h)}
	if _, err := NewPartitioned(v, part, 0, peers); err == nil {
		t.Fatal("mismatched graph version accepted")
	} else if kind, ok := transport.KindOf(err); !ok || kind != transport.ErrMismatch {
		t.Fatalf("error %v, want typed %v", err, transport.ErrMismatch)
	}
}
