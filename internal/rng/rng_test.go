package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at step %d", i)
		}
	}
}

func TestDistinctSeeds(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct seeds produced %d identical outputs out of 1000", same)
	}
}

func TestReseed(t *testing.T) {
	r := New(7)
	first := r.Uint64()
	r.Uint64()
	r.Reseed(7)
	if got := r.Uint64(); got != first {
		t.Fatalf("Reseed did not restore stream: got %d want %d", got, first)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(3)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling splits produced identical first outputs")
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(11)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(5)
	const n, draws = 10, 100000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d deviates too far from %f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat32Range(t *testing.T) {
	r := New(10)
	for i := 0; i < 10000; i++ {
		f := r.Float32()
		if f < 0 || f >= 1 {
			t.Fatalf("Float32 out of [0,1): %v", f)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := New(17)
	s := make([]int32, 100)
	for i := range s {
		s[i] = int32(i)
	}
	r.Shuffle(s)
	seen := make(map[int32]bool, len(s))
	for _, v := range s {
		if v < 0 || int(v) >= len(s) || seen[v] {
			t.Fatalf("shuffle broke permutation property at %d", v)
		}
		seen[v] = true
	}
}

func TestPerm(t *testing.T) {
	r := New(19)
	out := make([]int32, 50)
	r.Perm(out)
	seen := make(map[int32]bool)
	for _, v := range out {
		if seen[v] {
			t.Fatalf("Perm repeated %d", v)
		}
		seen[v] = true
	}
}

func TestSampleKProperties(t *testing.T) {
	f := func(seed uint64, nRaw, kRaw uint8) bool {
		n := int(nRaw%50) + 1
		k := int(kRaw % 60)
		src := make([]int32, n)
		for i := range src {
			src[i] = int32(i * 3) // distinct values
		}
		r := New(seed)
		got := r.SampleK(nil, src, k)
		wantLen := k
		if k >= n {
			wantLen = n
		}
		if len(got) != wantLen {
			return false
		}
		seen := make(map[int32]bool)
		valid := make(map[int32]bool)
		for _, v := range src {
			valid[v] = true
		}
		for _, v := range got {
			if seen[v] || !valid[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleKCoverage(t *testing.T) {
	// Every element should be sampled eventually: coarse uniformity check.
	r := New(23)
	src := []int32{0, 1, 2, 3, 4, 5, 6, 7}
	counts := make(map[int32]int)
	var buf []int32
	for i := 0; i < 4000; i++ {
		buf = r.SampleK(buf, src, 3)
		for _, v := range buf {
			counts[v]++
		}
	}
	for _, v := range src {
		c := counts[v]
		// Expectation 4000*3/8 = 1500.
		if c < 1300 || c > 1700 {
			t.Errorf("element %d sampled %d times, want ~1500", v, c)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkSampleK15of64(b *testing.B) {
	r := New(1)
	src := make([]int32, 64)
	for i := range src {
		src[i] = int32(i)
	}
	buf := make([]int32, 0, 15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = r.SampleK(buf, src, 15)
	}
}
