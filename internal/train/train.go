// Package train runs real mini-batch GNN training over the prep executors:
// models genuinely fit (loss decreases, accuracy rises), so the paper's
// accuracy experiments (Table 6, Figures 3 and 6) are live experiments here
// rather than replayed numbers.
//
// Wall-clock timing in this package is real but machine-local; the paper's
// full-scale timing claims are reproduced separately by the calibrated
// virtual-time simulations in internal/pipeline and internal/ddp.
package train

import (
	"fmt"
	"time"

	"salient/internal/dataset"
	"salient/internal/graph"
	"salient/internal/nn"
	"salient/internal/prep"
	"salient/internal/sampler"
	"salient/internal/store"
)

// ExecutorKind selects the batch-preparation data path.
type ExecutorKind int

const (
	ExecSalient ExecutorKind = iota // shared-memory workers, dynamic balancing
	ExecPyG                         // DataLoader model: static split + IPC copy
)

func (k ExecutorKind) String() string {
	if k == ExecPyG {
		return "pyg"
	}
	return "salient"
}

// Config are the training hyperparameters (paper Table 5 defaults).
type Config struct {
	Arch      string // "SAGE", "GAT", "GIN" or "SAGE-RI"
	Hidden    int
	Layers    int
	Fanouts   []int // training fanouts, Fanouts[0] for GNN layer 1
	BatchSize int
	LR        float64
	Workers   int
	Executor  ExecutorKind
	Seed      uint64

	// WeightDecay enables decoupled (AdamW-style) weight decay.
	WeightDecay float64
	// ClipNorm, when positive, rescales gradients to this global L2 norm
	// before each optimizer step.
	ClipNorm float64
	// Schedule maps epoch to a learning-rate multiplier (nil = constant).
	Schedule nn.LRSchedule
	// Store is the feature-access layer the executors gather batches
	// through. Nil selects the flat store over the dataset; sharded and
	// cached stores change transfer accounting, never batch contents.
	Store store.FeatureStore
	// Fused runs the fused gather+aggregate pipeline: the executor
	// pre-reduces the first layer's aggregate during the gather and the
	// model consumes it via nn.FusedModel.ForwardFused. Requires the
	// Salient executor, an architecture whose first layer mean/sum
	// aggregates (SAGE or GIN), and a store implementing
	// store.FusedGatherer. Training is bit-identical to the staged path.
	Fused bool
	// Graph is the topology source training samples against. Nil trains on
	// the dataset's static graph; a *graph.Dynamic pins the latest view
	// once per epoch (train-while-updating: updates applied mid-epoch take
	// effect at the next epoch boundary). With zero applied deltas training
	// is bit-identical to the static baseline. A *graph.Partitioned view
	// trains against a partitioned topology fetching remote adjacency over
	// a transport.
	Graph graph.Viewer
}

// Defaults fills unset fields with the paper's GraphSAGE settings.
func (c *Config) Defaults() {
	if c.Arch == "" {
		c.Arch = "SAGE"
	}
	if c.Hidden == 0 {
		c.Hidden = 256
	}
	if c.Layers == 0 {
		c.Layers = 3
	}
	if len(c.Fanouts) == 0 {
		c.Fanouts = []int{15, 10, 5}
	}
	if c.BatchSize == 0 {
		c.BatchSize = 1024
	}
	if c.LR == 0 {
		c.LR = 3e-3
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// NewModel constructs the named architecture from the paper's appendix.
func NewModel(arch string, cfg nn.ModelConfig) (nn.Model, error) {
	switch arch {
	case "SAGE":
		return nn.NewGraphSAGE(cfg), nil
	case "GAT":
		return nn.NewGAT(cfg), nil
	case "GIN":
		return nn.NewGIN(cfg), nil
	case "SAGE-RI":
		return nn.NewSAGERI(cfg), nil
	}
	return nil, fmt.Errorf("train: unknown architecture %q", arch)
}

// EpochStats summarizes one training epoch.
type EpochStats struct {
	Epoch     int
	Loss      float64 // mean NLL over batches
	Acc       float64 // training accuracy over seed nodes
	Batches   int
	Wall      time.Duration // end-to-end epoch wall time
	PrepWait  time.Duration // time the training loop blocked waiting on prep
	Compute   time.Duration // forward+backward+step time
	NodesSeen int           // total expanded-neighborhood rows processed
	EdgesSeen int
}

// Trainer owns a model, its optimizer, and a batch-preparation executor.
type Trainer struct {
	DS    *dataset.Dataset
	Model nn.Model
	Cfg   Config

	opt     *nn.Adam
	store   store.FeatureStore
	salient *prep.Salient
	pyg     *prep.PyG
	dec     Decoder // reusable decode target
}

// FeatureStore returns the store the trainer reads features through, for
// transfer-accounting inspection.
func (t *Trainer) FeatureStore() store.FeatureStore { return t.store }

// New builds a trainer over ds. Fanout length must equal the layer count.
func New(ds *dataset.Dataset, cfg Config) (*Trainer, error) {
	cfg.Defaults()
	if len(cfg.Fanouts) != cfg.Layers {
		return nil, fmt.Errorf("train: %d fanouts for %d layers", len(cfg.Fanouts), cfg.Layers)
	}
	model, err := NewModel(cfg.Arch, nn.ModelConfig{
		In:     ds.FeatDim,
		Hidden: cfg.Hidden,
		Out:    ds.NumClasses,
		Layers: cfg.Layers,
		Seed:   cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	tr := &Trainer{DS: ds, Model: model, Cfg: cfg, opt: nn.NewAdam(model.Params(), cfg.LR)}
	if cfg.WeightDecay > 0 {
		tr.opt.WithWeightDecay(cfg.WeightDecay)
	}
	tr.store = cfg.Store
	if tr.store == nil {
		tr.store = store.NewFlat(ds)
	}
	opts := prep.Options{
		Workers:   cfg.Workers,
		BatchSize: cfg.BatchSize,
		Fanouts:   cfg.Fanouts,
		Ordered:   true, // bit-reproducible training
		Store:     tr.store,
		Graph:     cfg.Graph,
	}
	if cfg.Fused {
		fm, ok := model.(nn.FusedModel)
		if !ok {
			return nil, fmt.Errorf("train: -fused needs a mean/sum first layer; %s has no fused forward (use SAGE or GIN)", cfg.Arch)
		}
		if cfg.Executor != ExecSalient {
			return nil, fmt.Errorf("train: the fused pipeline requires the salient executor")
		}
		opts.Fused = fm.FusedOp()
	}
	switch cfg.Executor {
	case ExecSalient:
		opts.Sampler = sampler.FastConfig()
		tr.salient, err = prep.NewSalient(ds, opts)
	case ExecPyG:
		opts.Sampler = sampler.BaselineConfig()
		tr.pyg, err = prep.NewPyG(ds, opts)
	default:
		err = fmt.Errorf("train: unknown executor %v", cfg.Executor)
	}
	if err != nil {
		return nil, err
	}
	return tr, nil
}

// run starts the configured executor for one epoch.
func (t *Trainer) run(seeds []int32, epochSeed uint64) *prep.Stream {
	if t.salient != nil {
		return t.salient.Run(seeds, epochSeed)
	}
	return t.pyg.Run(seeds, epochSeed)
}

// epochSeed derives the per-epoch shuffling/sampling seed.
func (t *Trainer) epochSeed(epoch int) uint64 {
	return EpochSeed(t.Cfg.Seed, epoch)
}

// TrainEpoch runs one epoch of mini-batch SGD over the training split. A
// batch-preparation failure drains the epoch (releasing every staged
// buffer) and is returned instead of panicking inside an executor worker.
func (t *Trainer) TrainEpoch(epoch int) (EpochStats, error) {
	st := EpochStats{Epoch: epoch}
	if t.Cfg.Schedule != nil {
		t.opt.SetLRFactor(t.Cfg.Schedule(epoch))
	}
	start := time.Now()
	epochSeed := t.epochSeed(epoch)
	stream := t.run(t.DS.Train, epochSeed)

	var firstErr error
	var correct, total int
	pred := make([]int32, t.Cfg.BatchSize)
	for {
		waitStart := time.Now()
		b, ok := <-stream.C
		if !ok {
			break
		}
		st.PrepWait += time.Since(waitStart)
		if b.Err != nil || firstErr != nil {
			if firstErr == nil {
				firstErr = b.Err
			}
			b.Release()
			continue
		}

		cStart := time.Now()
		res := ReplicaStep(t.Model, &t.dec, b, epochSeed, pred)
		st.Loss += res.Loss
		correct += res.Correct
		total += res.Rows
		if t.Cfg.ClipNorm > 0 {
			nn.ClipGradNorm(t.Model.Params(), t.Cfg.ClipNorm)
		}
		t.opt.Step(t.Model.Params())

		st.Batches++
		st.NodesSeen += res.Nodes
		st.EdgesSeen += res.Edges
		st.Compute += time.Since(cStart)
		b.Release()
	}
	stream.Wait()
	if firstErr == nil {
		firstErr = stream.Err()
	}
	st.Wall = time.Since(start)
	if st.Batches > 0 {
		st.Loss /= float64(st.Batches)
	}
	if total > 0 {
		st.Acc = float64(correct) / float64(total)
	}
	return st, firstErr
}

// Fit trains for n epochs and returns per-epoch stats, stopping at the
// first preparation failure.
func (t *Trainer) Fit(epochs int) ([]EpochStats, error) {
	out := make([]EpochStats, 0, epochs)
	for e := 0; e < epochs; e++ {
		s, err := t.TrainEpoch(e)
		if err != nil {
			return out, err
		}
		out = append(out, s)
	}
	return out, nil
}

// Evaluate runs sampled inference over the given nodes with the given
// fanouts (paper §5's unified inference path) and returns accuracy.
func (t *Trainer) Evaluate(nodes []int32, fanouts []int, seed uint64) (float64, error) {
	opts := prep.Options{
		Workers:   t.Cfg.Workers,
		BatchSize: t.Cfg.BatchSize,
		Fanouts:   fanouts,
		Sampler:   sampler.FastConfig(),
		Store:     t.store,
		Graph:     t.Cfg.Graph,
	}
	if t.Cfg.Fused {
		opts.Fused = t.Model.(nn.FusedModel).FusedOp()
	}
	ex, err := prep.NewSalient(t.DS, opts)
	if err != nil {
		return 0, err
	}
	stream := ex.Run(nodes, seed)
	var firstErr error
	correct, total := 0, 0
	pred := make([]int32, t.Cfg.BatchSize)
	for b := range stream.C {
		if b.Err != nil || firstErr != nil {
			if firstErr == nil {
				firstErr = b.Err
			}
			b.Release()
			continue
		}
		logp := forwardBatch(t.Model, &t.dec, b, false)
		labels := b.Labels()
		logp.ArgmaxRows(pred[:logp.Rows])
		for i := 0; i < logp.Rows; i++ {
			if pred[i] == labels[i] {
				correct++
			}
		}
		total += logp.Rows
		b.Release()
	}
	stream.Wait()
	if firstErr != nil {
		return 0, firstErr
	}
	if total == 0 {
		return 0, nil
	}
	return float64(correct) / float64(total), nil
}

// FitEarlyStop trains up to maxEpochs, evaluating validation accuracy with
// the given inference fanouts after every epoch, and stops once validation
// accuracy has not improved for `patience` consecutive epochs. It returns
// the per-epoch stats, the best validation accuracy, and the epoch it was
// achieved at.
func (t *Trainer) FitEarlyStop(maxEpochs, patience int, evalFanouts []int) ([]EpochStats, float64, int, error) {
	if patience < 1 {
		patience = 1
	}
	var stats []EpochStats
	best, bestEpoch, stale := -1.0, -1, 0
	for e := 0; e < maxEpochs; e++ {
		s, err := t.TrainEpoch(e)
		if err != nil {
			return stats, best, bestEpoch, err
		}
		stats = append(stats, s)
		acc, err := t.Evaluate(t.DS.Val, evalFanouts, t.epochSeed(e)^0xace1)
		if err != nil {
			return stats, best, bestEpoch, err
		}
		if acc > best {
			best, bestEpoch, stale = acc, e, 0
		} else {
			stale++
			if stale >= patience {
				break
			}
		}
	}
	return stats, best, bestEpoch, nil
}
