//go:build race

// Package race reports whether the race detector is compiled in, so
// allocation-exact tests (testing.AllocsPerRun budgets) can skip their
// strict assertions under -race: the detector instruments allocations and
// makes exact counts meaningless. Mirrors the stdlib's internal/race.
package race

// Enabled is true when the binary was built with -race.
const Enabled = true
