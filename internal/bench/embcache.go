package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"salient/internal/cache"
	"salient/internal/dataset"
	"salient/internal/graph"
	"salient/internal/serve"
	"salient/internal/store"
	"salient/internal/train"
)

// EmbCacheOpts configures the adaptive-caching + embedding-reuse sweep.
type EmbCacheOpts struct {
	Scale     float64       // arxiv stand-in scale
	Hidden    int           // model width
	Epochs    int           // warm-up training epochs
	Workers   int           // server batching workers
	MaxBatch  int           // micro-batch cap
	MaxDelay  time.Duration // micro-batch coalescing deadline
	Requests  int           // requests per phase (warm and measure)
	Rate      float64       // open-loop offered load, requests/second
	Skew      float64       // Zipf popularity skew of the request stream
	CacheFrac float64       // feature-cache rows as a fraction of N
	EmbFrac   float64       // embedding-cache rows as a fraction of N
	ChurnRate float64       // edge updates/second for the churn rows
	Probe     int           // nodes probed for oracle agreement
	Seed      uint64
}

func (o *EmbCacheOpts) defaults() {
	if o.Scale == 0 {
		o.Scale = 0.1
	}
	if o.Hidden == 0 {
		o.Hidden = 32
	}
	if o.Epochs == 0 {
		o.Epochs = 2
	}
	if o.Workers == 0 {
		o.Workers = 4
	}
	if o.MaxBatch == 0 {
		o.MaxBatch = 32
	}
	if o.MaxDelay == 0 {
		o.MaxDelay = 300 * time.Microsecond
	}
	if o.Requests == 0 {
		o.Requests = 1500
	}
	if o.Rate == 0 {
		o.Rate = 1500
	}
	if o.Skew == 0 {
		o.Skew = 1.1
	}
	if o.CacheFrac == 0 {
		o.CacheFrac = 0.2
	}
	if o.EmbFrac == 0 {
		o.EmbFrac = 0.3
	}
	if o.ChurnRate == 0 {
		o.ChurnRate = 5000
	}
	if o.Probe == 0 {
		o.Probe = 150
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// EmbCacheResult is one configuration of the sweep: a feature-cache policy
// crossed with an embedding-reuse setting under Zipf open-loop load.
type EmbCacheResult struct {
	Policy    string  `json:"policy"`    // feature-cache placement policy
	EmbRows   int     `json:"emb_rows"`  // embedding cache capacity (0 = reuse off)
	Staleness uint64  `json:"staleness"` // reuse window, snapshot versions
	Churn     float64 `json:"churn_rps"` // applied edge updates/second (0 = static)
	P50Ms     float64 `json:"p50_ms"`    // measured open-loop request latency
	P95Ms     float64 `json:"p95_ms"`    //
	P99Ms     float64 `json:"p99_ms"`    // the tentpole metric
	ShedFrac  float64 `json:"shed_frac"` // requests rejected by admission control
	EmbHit    float64 `json:"emb_hit"`   // frontier truncation rate
	CacheHit  float64 `json:"cache_hit"` // feature-cache hit rate
	MBMoved   float64 `json:"mb_moved"`  // host->device feature bytes, measure phase
	Agreement float64 `json:"agreement"` // probe answers equal to no-reuse oracle (-1: n/a under churn)
}

// embCacheResults measures the sweep: one trained model, one Zipf workload
// (hot set shared between warm and measure phases via the popularity
// permutation seed), each configuration warmed closed-loop, VIP placement
// refreshed from the observed traffic, then measured under Poisson
// open-loop load. The churn rows re-run the reuse comparison on a dynamic
// graph with live edge updates, where the bounded-staleness window is doing
// real work (entries age out as versions advance).
func embCacheResults(o EmbCacheOpts) ([]EmbCacheResult, error) {
	o.defaults()
	ds, err := dataset.Load(dataset.Arxiv, o.Scale)
	if err != nil {
		return nil, err
	}
	fanouts := []int{10, 5}
	tr, err := train.New(ds, train.Config{
		Arch: "SAGE", Hidden: o.Hidden, Layers: len(fanouts), Fanouts: fanouts,
		BatchSize: 128, Workers: o.Workers, Seed: o.Seed,
	})
	if err != nil {
		return nil, err
	}
	if _, err := tr.Fit(o.Epochs); err != nil {
		return nil, err
	}

	n := ds.G.N
	permSeed := o.Seed + 101
	warm := serve.ZipfNodes(n, o.Skew, permSeed, o.Seed+7, o.Requests)
	meas := serve.ZipfNodes(n, o.Skew, permSeed, o.Seed+8, o.Requests)
	probe := uniqueNodes(meas, o.Probe)

	// Oracle answers: a bare server (no caches, no reuse) probed
	// sequentially. Feature caches never change predictions, so any
	// divergence in a config's probe answers is attributable to reuse.
	oracle := make(map[int32]int32, len(probe))
	{
		srv, err := serve.New(tr.Model, ds, serve.Options{
			Fanouts: fanouts, Workers: o.Workers, MaxBatch: o.MaxBatch,
			MaxDelay: o.MaxDelay, Seed: o.Seed + 13,
		})
		if err != nil {
			return nil, err
		}
		for _, v := range probe {
			l, err := srv.Submit(v)
			if err != nil {
				srv.Close()
				return nil, err
			}
			oracle[v] = l
		}
		srv.Close()
	}

	cacheRows := int(float64(n) * o.CacheFrac)
	embRows := int(float64(n) * o.EmbFrac)
	type ecfg struct {
		policy  cache.Policy
		embRows int
		stale   uint64
		churn   float64
	}
	configs := []ecfg{
		{cache.StaticDegree, 0, 0, 0},
		{cache.VIP, 0, 0, 0},
		{cache.StaticDegree, embRows, 1, 0},
		{cache.VIP, embRows, 1, 0},
		{cache.VIP, 0, 0, o.ChurnRate},
		{cache.VIP, embRows, 2, o.ChurnRate},
	}
	var out []EmbCacheResult
	for _, cfg := range configs {
		r, err := measureEmbCache(tr, ds, fanouts, cacheRows, cfg.policy, cfg.embRows, cfg.stale, cfg.churn, warm, meas, probe, oracle, o)
		if err != nil {
			return nil, fmt.Errorf("embcache %v/%d/%d: %w", cfg.policy, cfg.embRows, cfg.stale, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// measureEmbCache runs one configuration: warm closed-loop, refresh the
// feature-cache placement from observed traffic, reset accounting, measure
// under Poisson open-loop load (with churn applied live for dynamic rows),
// then probe agreement against the oracle.
func measureEmbCache(tr *train.Trainer, ds *dataset.Dataset, fanouts []int, cacheRows int, policy cache.Policy, embRows int, stale uint64, churn float64, warm, meas, probe []int32, oracle map[int32]int32, o EmbCacheOpts) (EmbCacheResult, error) {
	cached, err := store.NewCachedOpts(store.NewFlat(ds), ds.G, store.CacheOptions{Rows: cacheRows, Policy: policy})
	if err != nil {
		return EmbCacheResult{}, err
	}
	sopts := serve.Options{
		Fanouts: fanouts, Workers: o.Workers, MaxBatch: o.MaxBatch,
		MaxDelay: o.MaxDelay, QueueCapacity: 1024, Seed: o.Seed + 13,
		Store: cached, EmbCacheRows: embRows, EmbStaleness: stale,
	}
	var dyn *graph.Dynamic
	if churn > 0 {
		if dyn, err = graph.NewDynamic(ds.G, graph.DynamicOptions{}); err != nil {
			return EmbCacheResult{}, err
		}
		sopts.Graph = dyn
	}
	srv, err := serve.New(tr.Model, ds, sopts)
	if err != nil {
		return EmbCacheResult{}, err
	}
	defer srv.Close()

	serve.DriveClosedLoop(srv, warm, 8, len(warm))
	// VIP placement plans from the traffic the warm phase observed; the
	// degree policy replans to the same top-K it started with.
	cached.Refresh(ds.G)
	srv.ResetStats()

	stopChurn := make(chan struct{})
	churnDone := make(chan struct{})
	if churn > 0 {
		go func() {
			defer close(churnDone)
			serve.DriveChurn(func(src, dst []int32) (int, error) {
				applied, _, err := srv.Update(src, dst)
				return applied, err
			}, ds.G.N, churn, o.Seed+21, stopChurn)
		}()
	}
	serve.DriveOpenLoopProcess(srv, meas, o.Rate, len(meas), serve.ArrivalPoisson, o.Seed+5)
	if churn > 0 {
		close(stopChurn)
		<-churnDone
	}
	st := srv.Stats()

	r := EmbCacheResult{
		Policy:    policy.String(),
		EmbRows:   embRows,
		Staleness: stale,
		Churn:     churn,
		P50Ms:     st.Latency.P50 * 1e3,
		P95Ms:     st.Latency.P95 * 1e3,
		P99Ms:     st.Latency.P99 * 1e3,
		EmbHit:    st.EmbHitRate(),
		CacheHit:  st.CacheHitRate(),
		MBMoved:   float64(st.BytesTransferred) / (1 << 20),
		Agreement: -1,
	}
	if st.Submitted+st.Rejected > 0 {
		r.ShedFrac = float64(st.Rejected) / float64(st.Submitted+st.Rejected)
	}
	if churn == 0 {
		agree := 0
		for _, v := range probe {
			l, err := srv.Submit(v)
			if err != nil {
				return r, err
			}
			if l == oracle[v] {
				agree++
			}
		}
		r.Agreement = float64(agree) / float64(len(probe))
	}
	return r, nil
}

// uniqueNodes returns up to k distinct nodes from the request stream, in
// first-appearance order (so the probe leans toward the hot set).
func uniqueNodes(stream []int32, k int) []int32 {
	seen := make(map[int32]bool, k)
	var out []int32
	for _, v := range stream {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
			if len(out) == k {
				break
			}
		}
	}
	return out
}

// EmbCacheSweep is the read-heavy serving study of the adaptive cache
// stack: VIP (access-frequency) feature-cache placement crossed with
// historical layer-embedding reuse, under Zipf-popularity Poisson load —
// p99 latency, shed rate, feature bytes moved, and prediction agreement
// against the no-reuse oracle, plus a churned-graph pair where the
// bounded-staleness window ages entries out as versions advance.
func EmbCacheSweep(o EmbCacheOpts) (Table, error) {
	o.defaults()
	t := Table{
		ID:    "embcache",
		Title: "Adaptive caching + embedding reuse under Zipf load (§5/§8 extension)",
		Header: []string{"Policy", "EmbCache", "Stale", "Churn", "p50", "p95", "p99",
			"Shed", "EmbHit", "FeatHit", "Moved", "Agree"},
	}
	results, err := embCacheResults(o)
	if err != nil {
		return t, err
	}
	for _, r := range results {
		embCol := "off"
		if r.EmbRows > 0 {
			embCol = fmt.Sprintf("%d rows", r.EmbRows)
		}
		churnCol := "static"
		if r.Churn > 0 {
			churnCol = fmt.Sprintf("%.0f ups", r.Churn)
		}
		agreeCol := "-"
		if r.Agreement >= 0 {
			agreeCol = pct(r.Agreement)
		}
		t.AddRow(
			r.Policy, embCol, fmt.Sprintf("%d", r.Staleness), churnCol,
			fmt.Sprintf("%.2fms", r.P50Ms), fmt.Sprintf("%.2fms", r.P95Ms), fmt.Sprintf("%.2fms", r.P99Ms),
			pct(r.ShedFrac), pct(r.EmbHit), pct(r.CacheHit),
			fmt.Sprintf("%.1fMB", r.MBMoved), agreeCol,
		)
	}
	t.AddNote("Zipf skew %.1f (hot set shared warm->measure), Poisson open loop at %.0f rps, %d requests/phase, arxiv scale %.2f",
		o.Skew, o.Rate, o.Requests, o.Scale)
	t.AddNote("feature cache %.0f%% of N; embedding cache %.0f%% of N; agreement probed on %d hot nodes vs a no-reuse server",
		100*o.CacheFrac, 100*o.EmbFrac, o.Probe)
	return t, nil
}

// EmbCacheSweepJSON writes the sweep's raw rows as JSON (the CI bench
// artifact).
func EmbCacheSweepJSON(w io.Writer, o EmbCacheOpts) error {
	results, err := embCacheResults(o)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}
