// Package partition implements streaming graph partitioning for the
// distributed-data future work the paper sketches (§8): when the graph and
// feature data no longer fit one machine, nodes must be split across hosts,
// and the partitioning objective must account not just for edge cut and
// load balance but for the cost of multi-hop neighborhood sampling.
//
// Three partitioners are provided:
//
//   - Random: hash placement, the communication-oblivious baseline.
//   - LDG (linear deterministic greedy, Stanton & Kliot 2012): streaming
//     placement that scores each part by resident-neighbor count with a
//     multiplicative balance penalty. One pass, near-METIS cut quality on
//     power-law graphs, no external dependency.
//   - LDGMultiPass: LDG with refinement passes, re-placing each node given
//     the current assignment (label-propagation-style improvement).
//
// Quality is evaluated by edge cut, balance, and the sampling-specific
// metric the paper calls for: the expected fraction of sampled multi-hop
// neighbors that live off-part (SampleCut), measured on real MFGs.
package partition

import (
	"fmt"

	"salient/internal/graph"
	"salient/internal/mfg"
)

// Assignment maps each node to a part in [0, Parts).
type Assignment struct {
	Part  []int32
	Parts int
}

// Random assigns nodes to parts by a multiplicative hash of their ID.
func Random(g graph.Topology, parts int, seed uint64) (*Assignment, error) {
	if err := checkParts(g, parts); err != nil {
		return nil, err
	}
	a := &Assignment{Part: make([]int32, g.NumNodes()), Parts: parts}
	for v := int32(0); v < g.NumNodes(); v++ {
		h := (uint64(v) + seed) * 0x9e3779b97f4a7c15
		h ^= h >> 29
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 32
		a.Part[v] = int32(h % uint64(parts))
	}
	return a, nil
}

// LDG runs one streaming pass of linear deterministic greedy partitioning:
// node v goes to the part with the most already-placed neighbors, scaled by
// the remaining capacity (1 - size/capacity).
func LDG(g graph.Topology, parts int) (*Assignment, error) {
	if err := checkParts(g, parts); err != nil {
		return nil, err
	}
	a := &Assignment{Part: make([]int32, g.NumNodes()), Parts: parts}
	for i := range a.Part {
		a.Part[i] = -1
	}
	sizes := make([]int64, parts)
	capacity := float64(g.NumNodes())/float64(parts) + 1
	neigh := make([]float64, parts)
	for v := int32(0); v < g.NumNodes(); v++ {
		place(g, a, v, sizes, capacity, neigh)
	}
	return a, nil
}

// LDGMultiPass runs LDG followed by `refine` re-placement passes.
func LDGMultiPass(g graph.Topology, parts, refine int) (*Assignment, error) {
	a, err := LDG(g, parts)
	if err != nil {
		return nil, err
	}
	sizes := make([]int64, parts)
	for _, p := range a.Part {
		sizes[p]++
	}
	capacity := float64(g.NumNodes())/float64(parts) + 1
	neigh := make([]float64, parts)
	for pass := 0; pass < refine; pass++ {
		moved := 0
		for v := int32(0); v < g.NumNodes(); v++ {
			old := a.Part[v]
			sizes[old]--
			a.Part[v] = -1
			place(g, a, v, sizes, capacity, neigh)
			if a.Part[v] != old {
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
	return a, nil
}

// place assigns v greedily and updates sizes. neigh is scratch (len parts).
func place(g graph.Topology, a *Assignment, v int32, sizes []int64, capacity float64, neigh []float64) {
	for i := range neigh {
		neigh[i] = 0
	}
	for _, u := range g.Neighbors(v) {
		if p := a.Part[u]; p >= 0 {
			neigh[p]++
		}
	}
	best := 0
	bestScore := -1.0
	for p := range neigh {
		score := (neigh[p] + 1) * (1 - float64(sizes[p])/capacity)
		if score > bestScore {
			bestScore = score
			best = p
		}
	}
	a.Part[v] = int32(best)
	sizes[best]++
}

func checkParts(g graph.Topology, parts int) error {
	if parts < 1 {
		return fmt.Errorf("partition: need >=1 parts, got %d", parts)
	}
	if int64(parts) > int64(g.NumNodes()) {
		return fmt.Errorf("partition: %d parts for %d nodes", parts, g.NumNodes())
	}
	return nil
}

// Quality summarizes a partitioning.
type Quality struct {
	Parts    int
	EdgeCut  float64 // fraction of edges crossing parts
	Balance  float64 // max part size / ideal part size (1.0 = perfect)
	MaxPart  int64
	MinPart  int64
	CutEdges int64
}

// Evaluate computes edge cut and balance for an assignment.
func Evaluate(g graph.Topology, a *Assignment) Quality {
	q := Quality{Parts: a.Parts}
	sizes := make([]int64, a.Parts)
	for _, p := range a.Part {
		sizes[p]++
	}
	q.MaxPart, q.MinPart = sizes[0], sizes[0]
	for _, s := range sizes[1:] {
		if s > q.MaxPart {
			q.MaxPart = s
		}
		if s < q.MinPart {
			q.MinPart = s
		}
	}
	ideal := float64(g.NumNodes()) / float64(a.Parts)
	if ideal > 0 {
		q.Balance = float64(q.MaxPart) / ideal
	}
	var cut int64
	for v := int32(0); v < g.NumNodes(); v++ {
		pv := a.Part[v]
		for _, u := range g.Neighbors(v) {
			if a.Part[u] != pv {
				cut++
			}
		}
	}
	q.CutEdges = cut / 2 // undirected edges counted twice
	if e := g.NumEdges(); e > 0 {
		q.EdgeCut = float64(cut) / float64(e)
	}
	return q
}

// SampleCut measures the paper's sampling-aware objective on a real sampled
// mini-batch: the fraction of sampled MFG edges whose endpoints live on
// different parts. In a distributed sampler each hop expands from the node
// that owns the frontier vertex, so every cross-part sampled edge is one
// remote neighbor-list lookup plus one remote feature-row fetch; SampleCut
// is the network share of the batch's expansion traffic.
func SampleCut(m *mfg.MFG, a *Assignment) float64 {
	var cross, total int64
	for li := range m.Blocks {
		blk := &m.Blocks[li]
		for d := int32(0); d < blk.NumDst; d++ {
			pd := a.Part[m.NodeIDs[d]]
			for _, src := range blk.Neighbors(d) {
				total++
				if a.Part[m.NodeIDs[src]] != pd {
					cross++
				}
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(cross) / float64(total)
}
