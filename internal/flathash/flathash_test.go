package flathash

import (
	"testing"
	"testing/quick"

	"salient/internal/rng"
)

func TestMapBasic(t *testing.T) {
	m := NewMap(4)
	if _, ok := m.Get(1); ok {
		t.Fatal("empty map claims to contain key")
	}
	m.Put(1, 10)
	m.Put(2, 20)
	if v, ok := m.Get(1); !ok || v != 10 {
		t.Fatalf("Get(1) = %d,%v", v, ok)
	}
	if v, ok := m.Get(2); !ok || v != 20 {
		t.Fatalf("Get(2) = %d,%v", v, ok)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	m.Put(1, 11) // overwrite
	if v, _ := m.Get(1); v != 11 {
		t.Fatalf("overwrite failed: %d", v)
	}
	if m.Len() != 2 {
		t.Fatalf("Len after overwrite = %d", m.Len())
	}
}

func TestMapGetOrInsert(t *testing.T) {
	m := NewMap(4)
	v, added := m.GetOrInsert(7, 100)
	if !added || v != 100 {
		t.Fatalf("first GetOrInsert = %d,%v", v, added)
	}
	v, added = m.GetOrInsert(7, 200)
	if added || v != 100 {
		t.Fatalf("second GetOrInsert = %d,%v; must return existing", v, added)
	}
}

func TestMapGrowth(t *testing.T) {
	m := NewMap(2)
	const n = 10000
	for i := int32(0); i < n; i++ {
		m.Put(i, i*2)
	}
	if m.Len() != n {
		t.Fatalf("Len = %d, want %d", m.Len(), n)
	}
	for i := int32(0); i < n; i++ {
		if v, ok := m.Get(i); !ok || v != i*2 {
			t.Fatalf("Get(%d) = %d,%v after growth", i, v, ok)
		}
	}
	if _, ok := m.Get(n); ok {
		t.Fatal("map contains never-inserted key")
	}
}

func TestMapDelete(t *testing.T) {
	m := NewMap(8)
	for i := int32(0); i < 100; i++ {
		m.Put(i, i)
	}
	for i := int32(0); i < 100; i += 2 {
		if !m.Delete(i) {
			t.Fatalf("Delete(%d) reported missing", i)
		}
	}
	if m.Delete(0) {
		t.Fatal("double delete succeeded")
	}
	if m.Len() != 50 {
		t.Fatalf("Len after deletes = %d", m.Len())
	}
	for i := int32(0); i < 100; i++ {
		_, ok := m.Get(i)
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get(%d) present=%v, want %v", i, ok, want)
		}
	}
	// Reinsert over tombstones.
	for i := int32(0); i < 100; i += 2 {
		m.Put(i, -i)
	}
	for i := int32(0); i < 100; i += 2 {
		if v, ok := m.Get(i); !ok || v != -i {
			t.Fatalf("tombstone reinsert Get(%d) = %d,%v", i, v, ok)
		}
	}
}

func TestMapReset(t *testing.T) {
	m := NewMap(8)
	for i := int32(0); i < 50; i++ {
		m.Put(i, i)
	}
	m.Reset()
	if m.Len() != 0 {
		t.Fatalf("Len after Reset = %d", m.Len())
	}
	for i := int32(0); i < 50; i++ {
		if _, ok := m.Get(i); ok {
			t.Fatalf("key %d survived Reset", i)
		}
	}
	m.Put(3, 33)
	if v, ok := m.Get(3); !ok || v != 33 {
		t.Fatal("map unusable after Reset")
	}
}

func TestMapNegativeKeys(t *testing.T) {
	m := NewMap(4)
	m.Put(-1, 1)
	m.Put(-2147483648, 2)
	if v, ok := m.Get(-1); !ok || v != 1 {
		t.Fatalf("Get(-1) = %d,%v", v, ok)
	}
	if v, ok := m.Get(-2147483648); !ok || v != 2 {
		t.Fatalf("Get(min) = %d,%v", v, ok)
	}
}

func TestMapMatchesStdlib(t *testing.T) {
	// Property: a random operation sequence behaves like map[int32]int32.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		m := NewMap(2)
		ref := make(map[int32]int32)
		for op := 0; op < 2000; op++ {
			k := int32(r.Intn(300)) - 150
			switch r.Intn(4) {
			case 0:
				v := int32(r.Intn(1000))
				m.Put(k, v)
				ref[k] = v
			case 1:
				got, ok := m.Get(k)
				want, wok := ref[k]
				if ok != wok || (ok && got != want) {
					return false
				}
			case 2:
				got := m.Delete(k)
				_, want := ref[k]
				delete(ref, k)
				if got != want {
					return false
				}
			case 3:
				v := int32(r.Intn(1000))
				got, added := m.GetOrInsert(k, v)
				want, exists := ref[k]
				if exists {
					if added || got != want {
						return false
					}
				} else {
					if !added || got != v {
						return false
					}
					ref[k] = v
				}
			}
			if m.Len() != len(ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMapRange(t *testing.T) {
	m := NewMap(8)
	want := map[int32]int32{}
	for i := int32(0); i < 200; i++ {
		m.Put(i*7, i)
		want[i*7] = i
	}
	got := map[int32]int32{}
	m.Range(func(k, v int32) bool {
		got[k] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range visited %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("Range got[%d]=%d want %d", k, got[k], v)
		}
	}
	// Early termination.
	count := 0
	m.Range(func(k, v int32) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("Range early stop visited %d", count)
	}
}

func TestSetBasic(t *testing.T) {
	s := NewSet(4)
	if s.Contains(5) {
		t.Fatal("empty set contains 5")
	}
	if !s.Add(5) {
		t.Fatal("first Add returned false")
	}
	if s.Add(5) {
		t.Fatal("duplicate Add returned true")
	}
	if !s.Contains(5) || s.Len() != 1 {
		t.Fatal("set state wrong after Add")
	}
	if !s.Remove(5) || s.Remove(5) {
		t.Fatal("Remove semantics wrong")
	}
	if s.Contains(5) {
		t.Fatal("element survived Remove")
	}
}

func TestSetGrowth(t *testing.T) {
	s := NewSet(2)
	const n = 10000
	for i := int32(0); i < n; i++ {
		if !s.Add(i * 3) {
			t.Fatalf("Add(%d) duplicate on fresh key", i*3)
		}
	}
	if s.Len() != n {
		t.Fatalf("Len = %d", s.Len())
	}
	for i := int32(0); i < n; i++ {
		if !s.Contains(i * 3) {
			t.Fatalf("lost key %d after growth", i*3)
		}
		if s.Contains(i*3 + 1) {
			t.Fatalf("phantom key %d", i*3+1)
		}
	}
}

func TestSetMatchesStdlib(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		s := NewSet(2)
		ref := make(map[int32]bool)
		for op := 0; op < 2000; op++ {
			k := int32(r.Intn(200)) - 100
			switch r.Intn(3) {
			case 0:
				got := s.Add(k)
				want := !ref[k]
				ref[k] = true
				if got != want {
					return false
				}
			case 1:
				if s.Contains(k) != ref[k] {
					return false
				}
			case 2:
				got := s.Remove(k)
				want := ref[k]
				delete(ref, k)
				if got != want {
					return false
				}
			}
			if s.Len() != len(ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSetReset(t *testing.T) {
	s := NewSet(4)
	for i := int32(0); i < 100; i++ {
		s.Add(i)
	}
	s.Reset()
	if s.Len() != 0 || s.Contains(1) {
		t.Fatal("Reset did not clear set")
	}
	if !s.Add(1) {
		t.Fatal("set unusable after Reset")
	}
}

func TestSetRange(t *testing.T) {
	s := NewSet(4)
	for i := int32(0); i < 64; i++ {
		s.Add(i)
	}
	seen := map[int32]bool{}
	s.Range(func(k int32) bool {
		seen[k] = true
		return true
	})
	if len(seen) != 64 {
		t.Fatalf("Range visited %d, want 64", len(seen))
	}
}

func BenchmarkMapGetOrInsertDense(b *testing.B) {
	r := rng.New(1)
	keys := make([]int32, 4096)
	for i := range keys {
		keys[i] = int32(r.Intn(1 << 20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewMap(4096)
		for j, k := range keys {
			m.GetOrInsert(k, int32(j))
		}
	}
}

func BenchmarkStdlibMapInsertDense(b *testing.B) {
	r := rng.New(1)
	keys := make([]int32, 4096)
	for i := range keys {
		keys[i] = int32(r.Intn(1 << 20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := make(map[int32]int32, 4096)
		for j, k := range keys {
			if _, ok := m[k]; !ok {
				m[k] = int32(j)
			}
		}
	}
}

func BenchmarkSetAddHit(b *testing.B) {
	s := NewSet(1024)
	for i := int32(0); i < 1024; i++ {
		s.Add(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(int32(i & 1023))
	}
}
