package graph

import (
	"reflect"
	"testing"
)

// FuzzDynamicRoundTrip is the native-fuzzing twin of
// TestDynamicRoundTripProperty: a byte string decodes to an edge list over a
// small node set plus a split point and compaction threshold, and the
// Dynamic built from (base prefix, delta suffix) must match FromEdgeList
// over the whole list — before and after forced compaction. The seed corpus
// runs as a regular test under `go test`; `go test -fuzz=FuzzDynamicRoundTrip
// ./internal/graph` explores further.
func FuzzDynamicRoundTrip(f *testing.F) {
	f.Add([]byte{7, 3, 2, 0, 1, 1, 2, 2, 0, 0, 0})
	f.Add([]byte{2, 0, 0})
	f.Add([]byte{16, 200, 50, 1, 1, 2, 3, 5, 8, 13, 13, 13, 0, 15, 15, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		n := int32(data[0]%31) + 1
		split := int(data[1])
		threshold := int64(data[2]%8) - 1 // -1 (never) .. 6 (eager)
		payload := data[3:]
		m := len(payload) / 2
		src := make([]int32, m)
		dst := make([]int32, m)
		for i := 0; i < m; i++ {
			src[i] = int32(payload[2*i]) % n
			dst[i] = int32(payload[2*i+1]) % n
		}
		if split > m {
			split %= m + 1
		}
		ref, err := FromEdgeList(n, src, dst)
		if err != nil {
			t.Fatalf("in-range edge list rejected: %v", err)
		}
		want := adjSetsUnique(ref)

		base, err := FromEdgeList(n, src[:split], dst[:split])
		if err != nil {
			t.Fatal(err)
		}
		d, err := NewDynamic(base, DynamicOptions{CompactThreshold: threshold})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.AddEdges(src[split:], dst[split:]); err != nil {
			t.Fatal(err)
		}
		s := d.Snapshot()
		if err := s.Validate(); err != nil {
			t.Fatalf("snapshot invalid: %v", err)
		}
		if got := adjSetsUnique(s); !reflect.DeepEqual(got, want) {
			t.Fatalf("snapshot adjacency %v, want %v", got, want)
		}
		d.mu.Lock()
		d.compactLocked()
		d.mu.Unlock()
		if got := adjSetsUnique(d.Snapshot()); !reflect.DeepEqual(got, want) {
			t.Fatalf("post-compaction adjacency %v, want %v", got, want)
		}
	})
}
