package ddp

import (
	"testing"

	"salient/internal/dataset"
	"salient/internal/device"
	"salient/internal/mfg"
	"salient/internal/nn"
	"salient/internal/rng"
	"salient/internal/sampler"
	"salient/internal/tensor"
)

func TestScalingMonotoneAndInPaperBand(t *testing.T) {
	pr := device.PaperProfile()
	counts := []int{1, 2, 4, 8, 16}
	speedups := map[string]float64{}
	for name, cal := range device.Calibrations() {
		res := ScalingCurve(pr, cal, counts, 2, 7)
		for i := 1; i < len(res); i++ {
			if res[i].Epoch >= res[i-1].Epoch {
				t.Fatalf("%s: epoch time not decreasing at %d GPUs (%.3f -> %.3f)",
					name, counts[i], res[i-1].Epoch, res[i].Epoch)
			}
		}
		speedups[name] = res[0].Epoch / res[len(res)-1].Epoch
	}
	// Figure 5: 16-GPU speedups between 4.45x and 8.05x, larger graphs
	// scaling better.
	for name, s := range speedups {
		if s < 3.8 || s > 8.8 {
			t.Fatalf("%s: 16-GPU speedup %.2fx outside the paper's band", name, s)
		}
	}
	if !(speedups["arxiv"] < speedups["products"] && speedups["products"] <= speedups["papers"]+1e-9) {
		t.Fatalf("speedups not ordered by graph size: %v", speedups)
	}
}

func TestPapersHeadlineNumbers(t *testing.T) {
	// The abstract's headline: papers100M trains in ~2.0 s/epoch on 16 GPUs.
	pr := device.PaperProfile()
	res := SimulateEpoch(pr, device.Calibration("papers"), 16, 2, 7)
	if res.Epoch < 1.6 || res.Epoch > 2.6 {
		t.Fatalf("papers 16-GPU epoch %.2fs, want ~2.0s", res.Epoch)
	}
}

func TestBaselineSlowerThanSalientEverywhere(t *testing.T) {
	pr := device.PaperProfile()
	for name, cal := range device.Calibrations() {
		for _, n := range []int{1, 4, 16} {
			sal := SimulateEpoch(pr, cal, n, 2, 7)
			base := SimulateBaselineEpoch(pr, cal, n, 2, 7)
			if base.Epoch <= sal.Epoch {
				t.Fatalf("%s@%d: baseline %.2fs not slower than SALIENT %.2fs",
					name, n, base.Epoch, sal.Epoch)
			}
		}
	}
}

func TestSimulateEpochDeterministic(t *testing.T) {
	pr := device.PaperProfile()
	cal := device.Calibration("products")
	a := SimulateEpoch(pr, cal, 8, 2, 5)
	b := SimulateEpoch(pr, cal, 8, 2, 5)
	if a != b {
		t.Fatal("same seed produced different results")
	}
}

func TestSimulateEpochPanicsOnZeroReplicas(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SimulateEpoch(device.PaperProfile(), device.Calibration("arxiv"), 0, 2, 1)
}

// buildReplicas trains R model replicas on disjoint shards of one batch and
// returns models plus per-replica inputs.
func gradOn(m nn.Model, x *tensor.Dense, g *mfg.MFG, labels []int32) {
	logp := m.Forward(x, g, false) // no dropout: gradients must be comparable
	grad := tensor.New(logp.Rows, logp.Cols)
	tensor.NLLLoss(logp, labels, grad)
	nn.ZeroGrad(m.Params())
	m.Backward(grad)
}

// TestAverageGradientsEqualsUnionBatch verifies DDP's semantic core on real
// models: with identical parameters, the average of per-shard gradients
// equals the gradient of the union batch (NLL losses are per-row means, so
// equal shard sizes make the average exact).
func TestAverageGradientsEqualsUnionBatch(t *testing.T) {
	ds, err := dataset.Load(dataset.Arxiv, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	cfg := nn.ModelConfig{In: ds.FeatDim, Hidden: 16, Out: ds.NumClasses, Layers: 2, Seed: 9}
	const shard = 32

	mkModel := func() nn.Model { return nn.NewGraphSAGE(cfg) }
	union := mkModel()
	repA := mkModel()
	repB := mkModel()
	SyncParams([][]*nn.Param{union.Params(), repA.Params(), repB.Params()})

	// Full-neighborhood "sampling" makes shard MFGs deterministic.
	fan := []int{1000, 1000}
	sm := sampler.New(ds.G, fan, sampler.FastConfig())
	seedsA := ds.Train[:shard]
	seedsB := ds.Train[shard : 2*shard]
	seedsU := ds.Train[:2*shard]

	slice := func(g *mfg.MFG) (*tensor.Dense, []int32) {
		x := tensor.New(len(g.NodeIDs), ds.FeatDim)
		for i, id := range g.NodeIDs {
			copy(x.Row(i), ds.Feat.Row(int(id)))
		}
		labels := make([]int32, g.Batch)
		for i := int32(0); i < g.Batch; i++ {
			labels[i] = ds.Labels[g.NodeIDs[i]]
		}
		return x, labels
	}

	gA := sm.Sample(rng.New(1), seedsA)
	xA, lA := slice(gA)
	gradOn(repA, xA, gA, lA)

	gB := sm.Sample(rng.New(1), seedsB)
	xB, lB := slice(gB)
	gradOn(repB, xB, gB, lB)

	gU := sm.Sample(rng.New(1), seedsU)
	xU, lU := slice(gU)
	gradOn(union, xU, gU, lU)

	AverageGradients([][]*nn.Param{repA.Params(), repB.Params()})

	for i, p := range union.Params() {
		diff := p.G.MaxAbsDiff(repA.Params()[i].G)
		if diff > 1e-4 {
			t.Fatalf("param %s: averaged shard gradient differs from union gradient by %v", p.Name, diff)
		}
	}
}

func TestAverageGradientsMakesReplicasIdentical(t *testing.T) {
	cfg := nn.ModelConfig{In: 8, Hidden: 8, Out: 4, Layers: 2, Seed: 3}
	reps := [][]*nn.Param{
		nn.NewGraphSAGE(cfg).Params(),
		nn.NewGraphSAGE(cfg).Params(),
		nn.NewGraphSAGE(cfg).Params(),
	}
	r := rng.New(11)
	for _, ps := range reps {
		for _, p := range ps {
			for i := range p.G.Data {
				p.G.Data[i] = r.Float32() - 0.5
			}
		}
	}
	AverageGradients(reps)
	for i := range reps[0] {
		for rep := 1; rep < len(reps); rep++ {
			if d := reps[0][i].G.MaxAbsDiff(reps[rep][i].G); d != 0 {
				t.Fatalf("replica %d param %d gradient differs by %v after all-reduce", rep, i, d)
			}
		}
	}
	AverageGradients(nil) // must not panic
}

func TestSyncParams(t *testing.T) {
	cfg := nn.ModelConfig{In: 8, Hidden: 8, Out: 4, Layers: 2, Seed: 3}
	a := nn.NewGraphSAGE(cfg)
	b := nn.NewGraphSAGE(cfg)
	b.Params()[0].W.Fill(123)
	SyncParams([][]*nn.Param{a.Params(), b.Params()})
	for i := range a.Params() {
		if d := a.Params()[i].W.MaxAbsDiff(b.Params()[i].W); d != 0 {
			t.Fatalf("param %d differs by %v after broadcast", i, d)
		}
	}
	SyncParams([][]*nn.Param{a.Params()}) // single replica: no-op
}
