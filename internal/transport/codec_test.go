package transport

import (
	"bytes"
	"io"
	"math"
	"testing"

	"salient/internal/half"
)

// mustReadFrame decodes one frame from raw bytes.
func mustReadFrame(t *testing.T, raw []byte) (byte, []byte) {
	t.Helper()
	typ, payload, _, err := readFrame(bytes.NewReader(raw), nil)
	if err != nil {
		t.Fatalf("readFrame: %v", err)
	}
	return typ, payload
}

// TestFrameSizeHelpersMatchEncoders pins the codec's single source of wire
// truth: every encoder emits exactly the byte count its *FrameBytes helper
// predicts — the identity the loopback accounting and store.Remote's wire
// stats both lean on.
func TestFrameSizeHelpersMatchEncoders(t *testing.T) {
	hello := Hello{Proto: ProtoVersion, Dim: 128, NumNodes: 9999, NumEdges: 123456, Precision: half.Int8, GraphVersion: 7}
	if got := int64(len(appendHello(nil, hello))); got != HelloFrameBytes() {
		t.Fatalf("hello frame is %d bytes, helper says %d", got, HelloFrameBytes())
	}
	ids := []int32{0, 5, 17, 123456, 2}
	if got := int64(len(appendIDsFrame(nil, msgRowsReq, ids))); got != RowsReqFrameBytes(len(ids)) {
		t.Fatalf("rowsReq frame is %d bytes, helper says %d", got, RowsReqFrameBytes(len(ids)))
	}
	if got := int64(len(appendIDsFrame(nil, msgNeighReq, ids))); got != NeighReqFrameBytes(len(ids)) {
		t.Fatalf("neighReq frame is %d bytes, helper says %d", got, NeighReqFrameBytes(len(ids)))
	}
	for _, prec := range []half.Precision{half.FP16, half.FP32, half.Int8} {
		rows := testRows(3, 4, prec)
		if got := int64(len(appendRowsResp(nil, rows))); got != RowsRespFrameBytes(3, 4, prec) {
			t.Fatalf("%s rowsResp frame is %d bytes, helper says %d", prec, got, RowsRespFrameBytes(3, 4, prec))
		}
	}
	adj := &Adjacency{Ptr: []int64{0, 2, 2, 5}, Adj: []int32{1, 2, 9, 8, 7}}
	if got := int64(len(appendNeighResp(nil, adj))); got != NeighRespFrameBytes(3, 5) {
		t.Fatalf("neighResp frame is %d bytes, helper says %d", got, NeighRespFrameBytes(3, 5))
	}
}

// testRows builds a deterministic row payload at prec.
func testRows(n, dim int, prec half.Precision) *Rows {
	r := &Rows{}
	r.Ensure(n, dim, prec)
	for i := 0; i < n; i++ {
		r.Labels[i] = int32(40 - i)
		for j := 0; j < dim; j++ {
			switch prec {
			case half.FP32:
				r.F[i*dim+j] = float32(i) - 0.25*float32(j)
			case half.Int8:
				r.Q[i*dim+j] = int8(i*dim + j - 7)
			default:
				r.H[i*dim+j] = half.FromFloat32(float32(i) - 0.25*float32(j))
			}
		}
		if prec == half.Int8 {
			r.Scales[i] = 0.5 + float32(i)
		}
	}
	return r
}

func rowsEqual(a, b *Rows) bool {
	if a.Prec != b.Prec || a.Dim != b.Dim || a.N != b.N {
		return false
	}
	eq := true
	switch a.Prec {
	case half.FP32:
		eq = bytes.Equal(f32bytes(a.F), f32bytes(b.F))
	case half.Int8:
		eq = bytes.Equal(i8bytes(a.Q), i8bytes(b.Q)) && bytes.Equal(f32bytes(a.Scales), f32bytes(b.Scales))
	default:
		for i := range a.H {
			eq = eq && a.H[i] == b.H[i]
		}
	}
	for i := range a.Labels {
		eq = eq && a.Labels[i] == b.Labels[i]
	}
	return eq
}

func f32bytes(f []float32) []byte {
	b := make([]byte, 0, 4*len(f))
	for _, v := range f {
		u := math.Float32bits(v)
		b = append(b, byte(u), byte(u>>8), byte(u>>16), byte(u>>24))
	}
	return b
}

func i8bytes(q []int8) []byte {
	b := make([]byte, len(q))
	for i, v := range q {
		b[i] = byte(v)
	}
	return b
}

func TestHelloRoundTrip(t *testing.T) {
	want := Hello{Proto: ProtoVersion, Dim: 128, NumNodes: 170000, NumEdges: 1 << 21, Precision: half.FP32, GraphVersion: 42}
	typ, payload := mustReadFrame(t, appendHello(nil, want))
	if typ != msgHello {
		t.Fatalf("frame type %d, want hello", typ)
	}
	got, err := decodeHello(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("hello round-trip: got %+v, want %+v", got, want)
	}
}

func TestIDsRoundTrip(t *testing.T) {
	want := []int32{3, 1, 4, 1, 5, 92653}
	typ, payload := mustReadFrame(t, appendIDsFrame(nil, msgRowsReq, want))
	if typ != msgRowsReq {
		t.Fatalf("frame type %d, want rowsReq", typ)
	}
	got, err := decodeIDs(payload, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d IDs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ID %d: got %d, want %d", i, got[i], want[i])
		}
	}
}

func TestRowsRoundTripAllPrecisions(t *testing.T) {
	for _, prec := range []half.Precision{half.FP16, half.FP32, half.Int8} {
		want := testRows(5, 7, prec)
		typ, payload := mustReadFrame(t, appendRowsResp(nil, want))
		if typ != msgRowsResp {
			t.Fatalf("%s: frame type %d, want rowsResp", prec, typ)
		}
		var got Rows
		if err := decodeRowsResp(payload, &got, 5, 7, prec); err != nil {
			t.Fatalf("%s: %v", prec, err)
		}
		if !rowsEqual(want, &got) {
			t.Fatalf("%s: rows round-trip mismatch", prec)
		}
	}
}

func TestNeighRoundTrip(t *testing.T) {
	want := &Adjacency{Ptr: []int64{0, 3, 3, 4, 9}, Adj: []int32{5, 6, 7, 1, 0, 2, 4, 6, 8}}
	typ, payload := mustReadFrame(t, appendNeighResp(nil, want))
	if typ != msgNeighResp {
		t.Fatalf("frame type %d, want neighResp", typ)
	}
	var got Adjacency
	if err := decodeNeighResp(payload, &got, 4); err != nil {
		t.Fatal(err)
	}
	if len(got.Ptr) != len(want.Ptr) || len(got.Adj) != len(want.Adj) {
		t.Fatalf("shape mismatch: got %d/%d, want %d/%d", len(got.Ptr), len(got.Adj), len(want.Ptr), len(want.Adj))
	}
	for i := range want.Ptr {
		if got.Ptr[i] != want.Ptr[i] {
			t.Fatalf("Ptr[%d]: got %d, want %d", i, got.Ptr[i], want.Ptr[i])
		}
	}
	for i := range want.Adj {
		if got.Adj[i] != want.Adj[i] {
			t.Fatalf("Adj[%d]: got %d, want %d", i, got.Adj[i], want.Adj[i])
		}
	}
}

func TestErrRespRoundTrip(t *testing.T) {
	typ, payload := mustReadFrame(t, appendErrResp(nil, ErrRejected, "node 99 out of range"))
	if typ != msgError {
		t.Fatalf("frame type %d, want errResp", typ)
	}
	kind, msg, err := decodeErrResp(payload)
	if err != nil {
		t.Fatal(err)
	}
	if kind != ErrRejected || msg != "node 99 out of range" {
		t.Fatalf("got (%v, %q)", kind, msg)
	}
}

// TestTruncatedFramesRejected cuts a valid frame at every byte boundary:
// every prefix must fail loudly (truncation or proto error), never decode.
func TestTruncatedFramesRejected(t *testing.T) {
	raw := appendRowsResp(nil, testRows(2, 3, half.FP16))
	for cut := 0; cut < len(raw); cut++ {
		_, _, _, err := readFrame(bytes.NewReader(raw[:cut]), nil)
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", cut, len(raw))
		}
	}
	// A frame followed by a stream cut mid-second-frame: first decodes, the
	// second surfaces the truncation.
	double := append(append([]byte{}, raw...), raw[:7]...)
	r := bytes.NewReader(double)
	if _, _, _, err := readFrame(r, nil); err != nil {
		t.Fatalf("intact first frame: %v", err)
	}
	if _, _, _, err := readFrame(r, nil); err == nil {
		t.Fatal("truncated second frame decoded without error")
	}
}

// TestCorruptFramesTyped pins the corruption cases to typed proto errors:
// zero-length frames, oversized length prefixes, payload/claim mismatches.
func TestCorruptFramesTyped(t *testing.T) {
	cases := map[string][]byte{
		"zero length":     {0, 0, 0, 0},
		"oversized claim": {0xff, 0xff, 0xff, 0xff, msgRowsReq},
	}
	for name, raw := range cases {
		_, _, _, err := readFrame(bytes.NewReader(raw), nil)
		if k, ok := KindOf(err); !ok || k != ErrProto {
			t.Fatalf("%s: got %v, want typed proto error", name, err)
		}
	}
	// Payload-level corruption: an ID list whose count disagrees with its size.
	raw := appendIDsFrame(nil, msgRowsReq, []int32{1, 2, 3})
	raw[frameHeaderBytes] = 99 // claim 99 IDs
	_, payload := mustReadFrame(t, raw)
	if _, err := decodeIDs(payload, nil); err == nil {
		t.Fatal("corrupt ID count decoded without error")
	} else if k, _ := KindOf(err); k != ErrProto {
		t.Fatalf("corrupt ID count: kind %v, want proto", k)
	}
	// A rows response shorter than the handshake-implied size.
	rowsRaw := appendRowsResp(nil, testRows(2, 3, half.FP16))
	_, rowsPayload := mustReadFrame(t, rowsRaw)
	var dst Rows
	if err := decodeRowsResp(rowsPayload, &dst, 2, 4, half.FP16); err == nil {
		t.Fatal("dim-mismatched rows decoded without error")
	} else if k, _ := KindOf(err); k != ErrProto {
		t.Fatalf("dim-mismatched rows: kind %v, want proto", k)
	}
	// An adjacency whose degree sum exceeds the payload.
	adjRaw := appendNeighResp(nil, &Adjacency{Ptr: []int64{0, 2}, Adj: []int32{1, 2}})
	adjRaw[frameHeaderBytes+4] = 200 // degree claims 200 entries
	_, adjPayload := mustReadFrame(t, adjRaw)
	var adj Adjacency
	if err := decodeNeighResp(adjPayload, &adj, 1); err == nil {
		t.Fatal("degree-inflated adjacency decoded without error")
	} else if k, _ := KindOf(err); k != ErrProto {
		t.Fatalf("degree-inflated adjacency: kind %v, want proto", k)
	}
}

// TestCheckHelloTyped pins the handshake property of satellite 3: version
// and precision mismatches are typed ErrMismatch, not garbage rows.
func TestCheckHelloTyped(t *testing.T) {
	base := Hello{Proto: ProtoVersion, Dim: 8, NumNodes: 100, Precision: half.FP16, GraphVersion: 3}
	if err := CheckHello(base, base); err != nil {
		t.Fatalf("matching hellos: %v", err)
	}
	for name, got := range map[string]Hello{
		"protocol":      {Proto: ProtoVersion + 1, Dim: 8, NumNodes: 100, Precision: half.FP16, GraphVersion: 3},
		"precision":     {Proto: ProtoVersion, Dim: 8, NumNodes: 100, Precision: half.Int8, GraphVersion: 3},
		"graph version": {Proto: ProtoVersion, Dim: 8, NumNodes: 100, Precision: half.FP16, GraphVersion: 4},
	} {
		err := CheckHello(got, base)
		if k, ok := KindOf(err); !ok || k != ErrMismatch {
			t.Fatalf("%s mismatch: got %v, want typed mismatch", name, err)
		}
	}
}

// TestReadFrameIOPassthrough: raw stream death (not a protocol violation)
// must pass through untyped so the client can classify it transient.
func TestReadFrameIOPassthrough(t *testing.T) {
	_, _, _, err := readFrame(bytes.NewReader(nil), nil)
	if err != io.EOF {
		t.Fatalf("empty stream: got %v, want io.EOF", err)
	}
	if _, typed := KindOf(err); typed {
		t.Fatal("clean EOF should not be a typed transport error")
	}
	if !transientCause(err) {
		t.Fatal("clean EOF should classify as transient")
	}
}
