package graph

import (
	"testing"
	"testing/quick"

	"salient/internal/rng"
)

func TestFromEdgeList(t *testing.T) {
	g, err := FromEdgeList(4, []int32{0, 0, 1, 2}, []int32{1, 2, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 4 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	if g.Degree(0) != 2 || g.Degree(3) != 0 {
		t.Fatalf("degrees wrong: %d %d", g.Degree(0), g.Degree(3))
	}
	ns := g.Neighbors(0)
	if len(ns) != 2 {
		t.Fatalf("neighbors(0) = %v", ns)
	}
}

func TestFromEdgeListErrors(t *testing.T) {
	if _, err := FromEdgeList(2, []int32{0}, []int32{}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := FromEdgeList(2, []int32{0}, []int32{5}); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	if _, err := FromEdgeList(2, []int32{-1}, []int32{0}); err == nil {
		t.Fatal("negative node accepted")
	}
}

func TestUndirectedSymmetry(t *testing.T) {
	g, _ := FromEdgeList(5, []int32{0, 1, 2, 0, 4}, []int32{1, 2, 0, 0, 4})
	u := g.Undirected()
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	for v := int32(0); v < u.N; v++ {
		for _, w := range u.Neighbors(v) {
			if !u.HasEdge(w, v) {
				t.Fatalf("edge (%d,%d) has no reverse", v, w)
			}
			if w == v {
				t.Fatalf("self loop survived at %d", v)
			}
		}
	}
	// Duplicate edge (0,1)+(1,0 via symmetrization) must appear once.
	count := 0
	for _, w := range u.Neighbors(0) {
		if w == 1 {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("edge (0,1) appears %d times", count)
	}
}

func TestUndirectedProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := int32(2 + r.Intn(40))
		m := r.Intn(200)
		src := make([]int32, m)
		dst := make([]int32, m)
		for i := 0; i < m; i++ {
			src[i] = int32(r.Intn(int(n)))
			dst[i] = int32(r.Intn(int(n)))
		}
		g, err := FromEdgeList(n, src, dst)
		if err != nil {
			return false
		}
		u := g.Undirected()
		if u.Validate() != nil {
			return false
		}
		// Symmetric, loop-free, deduplicated, and contains every original
		// non-loop edge.
		for v := int32(0); v < n; v++ {
			ns := u.Neighbors(v)
			for i, w := range ns {
				if w == v || !u.HasEdge(w, v) {
					return false
				}
				if i > 0 && ns[i-1] >= w {
					return false // must be sorted strictly increasing
				}
			}
		}
		for i := range src {
			if src[i] != dst[i] && !u.HasEdge(src[i], dst[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDegreeStats(t *testing.T) {
	g, _ := FromEdgeList(4, []int32{0, 0, 0, 1}, []int32{1, 2, 3, 2})
	if g.MaxDegree() != 3 {
		t.Fatalf("max degree = %d", g.MaxDegree())
	}
	if g.AvgDegree() != 1.0 {
		t.Fatalf("avg degree = %v", g.AvgDegree())
	}
}

func TestDegreeHistogram(t *testing.T) {
	// Node degrees: 3, 1, 0, 0.
	g, _ := FromEdgeList(4, []int32{0, 0, 0, 1}, []int32{1, 2, 3, 2})
	h := g.DegreeHistogram()
	// bucket 0: degree 0 (2 nodes); bucket 1: degree 1 (1 node);
	// bucket 2: degree 2-3 (1 node).
	if h[0] != 2 || h[1] != 1 || h[2] != 1 {
		t.Fatalf("histogram = %v", h)
	}
	var total int64
	for _, c := range h {
		total += c
	}
	if total != int64(g.N) {
		t.Fatalf("histogram total %d != N %d", total, g.N)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	fresh := func() *CSR {
		g, _ := FromEdgeList(3, []int32{0, 1}, []int32{1, 2})
		return g
	}
	cases := []struct {
		name    string
		corrupt func(*CSR)
	}{
		{"out-of-range Adj", func(g *CSR) { g.Adj[0] = 99 }},
		{"negative Adj", func(g *CSR) { g.Adj[1] = -1 }},
		{"non-monotone Ptr", func(g *CSR) { g.Ptr[1] = 5 }},
		{"decreasing Ptr", func(g *CSR) { g.Ptr[1], g.Ptr[2] = 2, 1 }},
		{"non-zero Ptr[0]", func(g *CSR) { g.Ptr[0] = 1 }},
		{"wrong Ptr length", func(g *CSR) { g.Ptr = g.Ptr[:2] }},
		{"Ptr/Adj disagreement", func(g *CSR) { g.Ptr[g.N] = 1 }},
		{"negative node count", func(g *CSR) { g.N = -1; g.Ptr = []int64{0} }},
		{"truncated Adj", func(g *CSR) { g.Adj = g.Adj[:1] }},
	}
	for _, tc := range cases {
		g := fresh()
		tc.corrupt(g)
		if g.Validate() == nil {
			t.Fatalf("%s passed validation", tc.name)
		}
	}
	if err := fresh().Validate(); err != nil {
		t.Fatalf("healthy graph failed validation: %v", err)
	}
}

// TestFromEdgeListKeepsDuplicatesAndSelfLoops pins the documented contract:
// duplicate pairs and self-loops are kept verbatim (multigraph semantics),
// and Undirected is the dedup/symmetrize step.
func TestFromEdgeListKeepsDuplicatesAndSelfLoops(t *testing.T) {
	g, err := FromEdgeList(3, []int32{0, 0, 0, 1}, []int32{1, 1, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if g.Degree(0) != 3 {
		t.Fatalf("degree(0) = %d, want 3 (duplicates and self-loop kept)", g.Degree(0))
	}
	dupes := 0
	for _, v := range g.Neighbors(0) {
		if v == 1 {
			dupes++
		}
	}
	if dupes != 2 {
		t.Fatalf("duplicate edge (0,1) stored %d times, want 2", dupes)
	}
	if !g.HasEdge(0, 0) {
		t.Fatal("self-loop (0,0) dropped")
	}
	u := g.Undirected()
	if u.Degree(0) != 1 || u.HasEdge(0, 0) {
		t.Fatalf("Undirected kept duplicates or self-loops: deg(0)=%d", u.Degree(0))
	}
	if _, err := FromEdgeList(-1, nil, nil); err == nil {
		t.Fatal("negative node count accepted")
	}
}

func TestHasEdgeLinearAndBinary(t *testing.T) {
	// Build a node with >8 sorted neighbors to exercise the binary path.
	src := make([]int32, 0)
	dst := make([]int32, 0)
	for v := int32(1); v <= 12; v++ {
		src = append(src, 0)
		dst = append(dst, v)
	}
	g, _ := FromEdgeList(13, src, dst)
	for v := int32(1); v <= 12; v++ {
		if !g.HasEdge(0, v) {
			t.Fatalf("missing edge (0,%d)", v)
		}
	}
	if g.HasEdge(0, 0) {
		t.Fatal("phantom self edge")
	}
}

func TestInduced(t *testing.T) {
	// Triangle 0-1-2 plus pendant 3 attached to 0.
	g, err := FromEdgeList(4,
		[]int32{0, 1, 1, 2, 2, 0, 0, 3},
		[]int32{1, 0, 2, 1, 0, 2, 3, 0})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := g.Induced([]int32{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if sub.N != 2 {
		t.Fatalf("induced N=%d, want 2", sub.N)
	}
	// Only the 0<->2 edge survives; locals: 0->0, 2->1.
	if sub.NumEdges() != 2 {
		t.Fatalf("induced edges=%d, want 2", sub.NumEdges())
	}
	if !sub.HasEdge(0, 1) || !sub.HasEdge(1, 0) {
		t.Fatal("induced adjacency wrong")
	}
	if _, err := g.Induced([]int32{0, 0}); err == nil {
		t.Fatal("duplicate node accepted")
	}
	if _, err := g.Induced([]int32{99}); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	empty, err := g.Induced(nil)
	if err != nil || empty.N != 0 || empty.NumEdges() != 0 {
		t.Fatalf("empty induced: %v %+v", err, empty)
	}
}

func TestInducedPreservesDegreesWithinSet(t *testing.T) {
	// Property: for the full node set, Induced is an isomorphic copy.
	g, err := FromEdgeList(5,
		[]int32{0, 1, 1, 2, 3, 4, 2, 0},
		[]int32{1, 0, 2, 1, 4, 3, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	all := []int32{0, 1, 2, 3, 4}
	sub, err := g.Induced(all)
	if err != nil {
		t.Fatal(err)
	}
	for v := int32(0); v < g.N; v++ {
		if sub.Degree(v) != g.Degree(v) {
			t.Fatalf("degree of %d changed: %d vs %d", v, sub.Degree(v), g.Degree(v))
		}
	}
}
