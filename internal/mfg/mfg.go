// Package mfg defines the message-flow graph (MFG) produced by neighborhood
// sampling: a sequence of bipartite blocks, one per GNN layer, plus the
// global IDs of every node involved in the mini-batch.
//
// The node ordering follows the PyG/SALIENT convention that makes slicing
// and layer application cheap: local IDs are assigned in discovery order
// (seed nodes first, then each hop's newly discovered neighbors), so the
// destination nodes of every block are a prefix of its source nodes and
// `x_target = x[:NumDst]` is a contiguous slice.
package mfg

import "fmt"

// Block is one bipartite sampling layer. Edges are stored grouped by
// destination (CSC-like): the sampled in-neighbors of destination-local node
// v are Src[DstPtr[v]:DstPtr[v+1]], each entry a source-local node ID.
type Block struct {
	DstPtr []int32 // len NumDst+1, monotone
	Src    []int32 // source-local IDs, grouped by destination
	NumDst int32   // destination node count (prefix of the source set)
	NumSrc int32   // source node count
}

// NumEdges returns the number of sampled edges in the block.
func (b *Block) NumEdges() int { return len(b.Src) }

// Neighbors returns the source-local in-neighbors of destination v.
func (b *Block) Neighbors(v int32) []int32 {
	return b.Src[b.DstPtr[v]:b.DstPtr[v+1]]
}

// MFG is a sampled mini-batch: Blocks[0] is consumed by the first GNN layer
// (the outermost, largest hop) and Blocks[len-1] by the last layer, whose
// destinations are exactly the seed nodes.
type MFG struct {
	Blocks  []Block
	NodeIDs []int32 // global node IDs indexed by local ID; len == Blocks[0].NumSrc
	Batch   int32   // number of seed nodes == Blocks[len-1].NumDst
}

// Layers returns the number of blocks.
func (m *MFG) Layers() int { return len(m.Blocks) }

// TotalNodes returns the number of distinct nodes in the expanded
// neighborhood (the rows that must be sliced and transferred).
func (m *MFG) TotalNodes() int { return len(m.NodeIDs) }

// TotalEdges returns the number of sampled edges across all blocks.
func (m *MFG) TotalEdges() int {
	n := 0
	for i := range m.Blocks {
		n += m.Blocks[i].NumEdges()
	}
	return n
}

// TransferBytes estimates the host-to-device payload of this MFG given the
// feature width (in bytes per scalar) and feature dimensionality: feature
// rows for all nodes, labels for the seed nodes, and edge indices.
func (m *MFG) TransferBytes(featDim, bytesPerScalar int) int64 {
	var b int64
	b += int64(m.TotalNodes()) * int64(featDim) * int64(bytesPerScalar)
	b += int64(m.Batch) * 8 // labels (int64 in torch)
	for i := range m.Blocks {
		b += int64(m.Blocks[i].NumEdges()) * 8 // src,dst int32 pairs
		b += int64(len(m.Blocks[i].DstPtr)) * 4
	}
	return b
}

// TransferBytesRows is TransferBytes for feature encodings whose row width
// is not a whole number of bytes per scalar — int8 rows carry a 4-byte
// dequantization scale, so their width is dim+4, not dim×1. rowBytes is the
// full per-row byte count (half.Precision.RowBytes for stored precisions);
// labels and index payloads are accounted exactly as TransferBytes does.
func (m *MFG) TransferBytesRows(rowBytes int64) int64 {
	var b int64
	b += int64(m.TotalNodes()) * rowBytes
	b += int64(m.Batch) * 8 // labels (int64 in torch)
	for i := range m.Blocks {
		b += int64(m.Blocks[i].NumEdges()) * 8 // src,dst int32 pairs
		b += int64(len(m.Blocks[i].DstPtr)) * 4
	}
	return b
}

// Validate checks all structural invariants of the MFG:
//   - the last block's destinations are the seed nodes;
//   - destination sets are prefixes of source sets;
//   - adjacent blocks chain (sources of layer ℓ+1 == destinations of layer ℓ);
//   - DstPtr is monotone and edge endpoints are in range;
//   - NodeIDs covers every source node of the outermost block.
func (m *MFG) Validate() error {
	if len(m.Blocks) == 0 {
		return fmt.Errorf("mfg: no blocks")
	}
	last := &m.Blocks[len(m.Blocks)-1]
	if last.NumDst != m.Batch {
		return fmt.Errorf("mfg: last block NumDst=%d != batch %d", last.NumDst, m.Batch)
	}
	if int(m.Blocks[0].NumSrc) != len(m.NodeIDs) {
		return fmt.Errorf("mfg: NodeIDs len %d != outer NumSrc %d", len(m.NodeIDs), m.Blocks[0].NumSrc)
	}
	for i := range m.Blocks {
		b := &m.Blocks[i]
		if b.NumDst > b.NumSrc {
			return fmt.Errorf("mfg: block %d NumDst %d > NumSrc %d", i, b.NumDst, b.NumSrc)
		}
		if int32(len(b.DstPtr)) != b.NumDst+1 {
			return fmt.Errorf("mfg: block %d DstPtr len %d != NumDst+1", i, len(b.DstPtr))
		}
		if b.DstPtr[0] != 0 || int(b.DstPtr[b.NumDst]) != len(b.Src) {
			return fmt.Errorf("mfg: block %d DstPtr ends wrong", i)
		}
		for v := int32(0); v < b.NumDst; v++ {
			if b.DstPtr[v+1] < b.DstPtr[v] {
				return fmt.Errorf("mfg: block %d DstPtr not monotone at %d", i, v)
			}
		}
		for _, s := range b.Src {
			if s < 0 || s >= b.NumSrc {
				return fmt.Errorf("mfg: block %d src %d out of range [0,%d)", i, s, b.NumSrc)
			}
		}
		if i+1 < len(m.Blocks) {
			next := &m.Blocks[i+1]
			if next.NumSrc != b.NumDst {
				return fmt.Errorf("mfg: block %d NumDst %d != block %d NumSrc %d",
					i, b.NumDst, i+1, next.NumSrc)
			}
		}
	}
	return nil
}

// Clone deep-copies the MFG into one contiguous allocation, detaching it
// from any sampler scratch buffers it may alias (samplers with pooled reuse
// invalidate returned MFGs on their next Sample call).
func (m *MFG) Clone() *MFG {
	total := len(m.NodeIDs)
	for i := range m.Blocks {
		total += len(m.Blocks[i].DstPtr) + len(m.Blocks[i].Src)
	}
	backing := make([]int32, 0, total)
	grab := func(src []int32) []int32 {
		start := len(backing)
		backing = append(backing, src...)
		return backing[start:len(backing):len(backing)]
	}
	out := &MFG{Blocks: make([]Block, len(m.Blocks)), Batch: m.Batch}
	out.NodeIDs = grab(m.NodeIDs)
	for i := range m.Blocks {
		b := &m.Blocks[i]
		out.Blocks[i] = Block{
			DstPtr: grab(b.DstPtr),
			Src:    grab(b.Src),
			NumDst: b.NumDst,
			NumSrc: b.NumSrc,
		}
	}
	return out
}
