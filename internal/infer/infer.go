// Package infer implements the paper's two inference regimes (§5):
//
//   - Sampled: mini-batch inference with neighborhood sampling, reusing the
//     exact training data path (prep executor → model forward). This is the
//     regime SALIENT argues for: bounded memory, reusable code, trivially
//     restrictable to a node subset, distributable.
//
//   - Full: layer-wise full-neighborhood inference, evaluating each layer
//     over the whole graph and materializing every layer's representations
//     in host memory — accurate but memory-hungry (it runs out of memory on
//     ogbn-papers100M in the paper).
//
// It also computes the accuracy-versus-degree profile of Figure 3.
package infer

import (
	"fmt"

	"salient/internal/dataset"
	"salient/internal/graph"
	"salient/internal/nn"
	"salient/internal/prep"
	"salient/internal/sampler"
	"salient/internal/slicing"
	"salient/internal/store"
	"salient/internal/tensor"
)

// Options configures sampled inference.
type Options struct {
	Fanouts   []int // per-layer inference fanouts (Table 6)
	BatchSize int
	Workers   int
	Seed      uint64
	// Store is the feature-access layer inference reads through. Nil
	// selects the flat store over the dataset.
	Store store.FeatureStore
	// Graph is the topology source sampling reads adjacency through. Nil
	// infers over the dataset's static graph; a viewer (e.g. a
	// *graph.Dynamic) pins its latest view for the whole run.
	Graph graph.Viewer
	// Fused runs the fused gather+aggregate pipeline. Requires a model
	// implementing nn.FusedModel (SAGE or GIN) and a store with a fused
	// gather; predictions are bit-identical to the staged path.
	Fused bool
}

func (o *Options) defaults() {
	if o.BatchSize == 0 {
		o.BatchSize = 1024
	}
	if o.Workers == 0 {
		o.Workers = 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// Sampled predicts labels for the given nodes with one-shot neighborhood
// sampling, returning predictions aligned with nodes. The model is evaluated
// in inference mode (no dropout); the data path is the SALIENT executor.
func Sampled(m nn.Model, ds *dataset.Dataset, nodes []int32, opts Options) ([]int32, error) {
	opts.defaults()
	popts := prep.Options{
		Workers:   opts.Workers,
		BatchSize: opts.BatchSize,
		Fanouts:   opts.Fanouts,
		Sampler:   sampler.FastConfig(),
		Store:     opts.Store,
		Graph:     opts.Graph,
	}
	var fm nn.FusedModel
	if opts.Fused {
		var ok bool
		if fm, ok = m.(nn.FusedModel); !ok {
			return nil, fmt.Errorf("infer: fused inference needs a mean/sum first layer; %s has no fused forward", m.Name())
		}
		popts.Fused = fm.FusedOp()
	}
	ex, err := prep.NewSalient(ds, popts)
	if err != nil {
		return nil, err
	}

	pred := make([]int32, len(nodes))
	pos := make(map[int32]int, len(nodes))
	for i, v := range nodes {
		pos[v] = i
	}

	stream := ex.Run(nodes, opts.Seed)
	var firstErr error
	var x *tensor.Dense
	rowPred := make([]int32, opts.BatchSize)
	for b := range stream.C {
		if b.Err != nil || firstErr != nil {
			if firstErr == nil {
				firstErr = b.Err
			}
			b.Release()
			continue
		}
		var logp *tensor.Dense
		if b.Fused != nil {
			logp = fm.ForwardFused(b.Fused.Agg, b.Fused.XT, b.MFG, false)
		} else {
			x = slicing.DecodeInto(x, b.Buf)
			logp = m.Forward(x, b.MFG, false)
		}
		logp.ArgmaxRows(rowPred[:logp.Rows])
		for i := 0; i < logp.Rows; i++ {
			pred[pos[b.Seeds[i]]] = rowPred[i]
		}
		b.Release()
	}
	stream.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return pred, nil
}

// Full runs layer-wise full-neighborhood inference over the whole graph and
// returns predictions for the given nodes.
func Full(m nn.Model, ds *dataset.Dataset, nodes []int32) []int32 {
	pred, err := FullThrough(m, ds, nodes, nil)
	if err != nil {
		// Unreachable without a store: ds.Feat is used directly.
		panic("infer: " + err.Error()) //lint:allow panicdiscipline documented unreachable: the direct-feature store never fails a gather
	}
	return pred
}

// FullThrough is Full reading the layer-0 feature matrix through st, so
// full inference pays the same gather accounting as the rest of the data
// path. The staged rows decode to exactly ds.Feat (the dataset keeps its
// float32 master equal to the widened half-precision rows), so the store
// changes accounting, never predictions; nil skips the gather and uses
// ds.Feat directly, copy-free.
func FullThrough(m nn.Model, ds *dataset.Dataset, nodes []int32, st store.FeatureStore) ([]int32, error) {
	x := ds.Feat
	if st != nil {
		if err := store.Validate(st, ds, store.ValidateOpts{}); err != nil {
			return nil, fmt.Errorf("infer: %w", err)
		}
		ids := make([]int32, ds.G.N)
		for i := range ids {
			ids[i] = int32(i)
		}
		buf := slicing.NewPinned(len(ids), st.Dim(), 0)
		if err := st.Gather(buf, ids, 0); err != nil {
			return nil, err
		}
		x = slicing.DecodeInto(nil, buf)
	}

	logp := m.InferFull(ds.G, x)
	all := make([]int32, logp.Rows)
	logp.ArgmaxRows(all)
	pred := make([]int32, len(nodes))
	for i, v := range nodes {
		pred[i] = all[v]
	}
	return pred, nil
}

// Accuracy returns the fraction of nodes whose prediction matches labels.
func Accuracy(pred []int32, labels []int32, nodes []int32) float64 {
	if len(nodes) == 0 {
		return 0
	}
	correct := 0
	for i, v := range nodes {
		if pred[i] == labels[v] {
			correct++
		}
	}
	return float64(correct) / float64(len(nodes))
}

// DegreeBin is one point of the Figure 3 profile: prediction accuracy and
// node mass for test nodes whose degree falls in [Lo, Hi).
type DegreeBin struct {
	Lo, Hi   int32
	Count    int
	Accuracy float64
	MassFrac float64 // Count / total nodes profiled (the "degree pdf")
}

// AccuracyByDegree bins the given nodes by degree (geometric bins, factor 2)
// and returns per-bin accuracy and node mass. Empty bins are omitted.
func AccuracyByDegree(g graph.Topology, pred []int32, labels []int32, nodes []int32) []DegreeBin {
	if len(nodes) == 0 {
		return nil
	}
	maxDeg := int32(1)
	for _, v := range nodes {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	nbins := 1
	for hi := int32(1); hi < maxDeg; hi *= 2 {
		nbins++
	}
	counts := make([]int, nbins)
	correct := make([]int, nbins)
	for i, v := range nodes {
		b := binOf(g.Degree(v))
		counts[b]++
		if pred[i] == labels[v] {
			correct[b]++
		}
	}
	var out []DegreeBin
	lo := int32(0)
	hi := int32(1)
	for b := 0; b < nbins; b++ {
		if counts[b] > 0 {
			out = append(out, DegreeBin{
				Lo:       lo,
				Hi:       hi,
				Count:    counts[b],
				Accuracy: float64(correct[b]) / float64(counts[b]),
				MassFrac: float64(counts[b]) / float64(len(nodes)),
			})
		}
		lo = hi
		hi *= 2
	}
	return out
}

// binOf maps degree d to its geometric bin index: 0 for d<1, then
// bin k holds degrees in [2^(k-1), 2^k).
func binOf(d int32) int {
	if d < 1 {
		return 0
	}
	b := 1
	for hi := int32(2); hi <= d; hi *= 2 {
		b++
	}
	return b
}
