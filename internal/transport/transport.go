// Package transport is the wire seam of the distributed data plane: a
// minimal RPC-ish interface with exactly the two batched fetches the data
// path needs — feature rows and adjacency — plus a versioned handshake that
// pins what the peer serves (dim, precision, graph version) before any row
// crosses.
//
// Two implementations share one frame codec:
//
//   - Loopback executes fetches in-process on the caller's goroutine. Rows
//     are written by the handler directly into the caller's buffers, so the
//     loopback path is bit-identical to a local gather; wire bytes are
//     *accounted* with the same frame-size arithmetic the TCP codec uses,
//     making loopback stats an exact prediction of what TCP would move.
//   - TCP speaks length-prefixed frames over a real socket with per-call
//     deadlines and retry-on-transient semantics (fetches are idempotent
//     reads, so a dropped connection redials and replays safely).
//
// The package is a leaf: it depends only on internal/half and the standard
// library. Graph and store build their distributed halves on top of it.
package transport

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"syscall"

	"salient/internal/half"
)

// ProtoVersion is the wire protocol revision. Both ends exchange it in the
// handshake; a mismatch is a typed ErrMismatch at dial time, never garbage
// rows later.
const ProtoVersion = 1

// Hello is the handshake either side serves: what the peer holds and at what
// precision, pinned before any fetch. Dim/NumNodes compatibility against a
// dataset is the caller's policy (store.Validate's shape check — one
// implementation); the transport itself enforces only Proto.
type Hello struct {
	Proto        uint16
	Dim          int
	NumNodes     int
	NumEdges     int64
	Precision    half.Precision
	GraphVersion uint64
}

// Rows is the batched row payload of a FetchRows call: len(ids) rows at one
// storage precision, row-major, plus one label per row. Exactly one of
// H/F/Q(+Scales) is populated, matching Prec — the same layout rule as the
// store's host matrices, so rows cross the wire at storage precision (fp16
// and int8 rows stay narrow on the network).
type Rows struct {
	Prec   half.Precision
	Dim    int
	N      int
	H      []half.Float16 // fp16 payload, N×Dim
	F      []float32      // fp32 payload, N×Dim
	Q      []int8         // int8 payload, N×Dim
	Scales []float32      // int8 per-row dequant scales, N
	Labels []int32        // one label per row, N
}

// Ensure sizes the payload arrays for n rows of dim at prec, reusing backing
// arrays across calls.
func (r *Rows) Ensure(n, dim int, prec half.Precision) {
	r.Prec, r.Dim, r.N = prec, dim, n
	if cap(r.Labels) < n {
		r.Labels = make([]int32, n)
	}
	r.Labels = r.Labels[:n]
	switch prec {
	case half.FP32:
		if cap(r.F) < n*dim {
			r.F = make([]float32, n*dim)
		}
		r.F = r.F[:n*dim]
	case half.Int8:
		if cap(r.Q) < n*dim {
			r.Q = make([]int8, n*dim)
		}
		r.Q = r.Q[:n*dim]
		if cap(r.Scales) < n {
			r.Scales = make([]float32, n)
		}
		r.Scales = r.Scales[:n]
	default:
		if cap(r.H) < n*dim {
			r.H = make([]half.Float16, n*dim)
		}
		r.H = r.H[:n*dim]
	}
}

// Adjacency is the batched neighbor payload of a FetchNeighbors call: the
// neighbors of ids[i] are Adj[Ptr[i]:Ptr[i+1]] (a CSR fragment in request
// order).
type Adjacency struct {
	Ptr []int64
	Adj []int32
}

// Reset empties the adjacency for reuse, keeping capacity.
func (a *Adjacency) Reset() {
	a.Ptr = a.Ptr[:0]
	a.Adj = a.Adj[:0]
}

// Handler is the server side of the seam: whoever owns a partition's rows
// and adjacency implements these two batched fetches. Implementations must
// be safe for concurrent calls (the TCP server runs one goroutine per
// accepted connection) and must reject out-of-range IDs with an error rather
// than serving garbage.
type Handler interface {
	// Hello describes what this handler serves; sent at connection accept.
	Hello() Hello
	// FetchRows writes the rows and labels for ids into dst (Ensure first).
	FetchRows(ids []int32, dst *Rows) error
	// FetchNeighbors writes the adjacency of ids into dst (Reset first).
	FetchNeighbors(ids []int32, dst *Adjacency) error
}

// Conn is a client connection to one host. Calls are serialized internally
// (one in-flight request per connection), so a Conn is safe for concurrent
// use by multiple gathering workers. Each fetch returns the wire bytes the
// call moved in both directions — request and response frames — which is
// what store.Remote charges as real network traffic.
type Conn interface {
	// Hello returns the peer's handshake, validated for ProtoVersion at dial.
	Hello() Hello
	// FetchRows fetches rows+labels for ids into dst and returns wire bytes.
	FetchRows(ids []int32, dst *Rows) (int64, error)
	// FetchNeighbors fetches adjacency for ids into dst and returns wire bytes.
	FetchNeighbors(ids []int32, dst *Adjacency) (int64, error)
	// Stats returns the connection's accumulated wire accounting.
	Stats() Stats
	// Close releases the connection; further calls fail with ErrClosed.
	Close() error
}

// Stats is a Conn's accumulated wire accounting. For TCP, BytesSent and
// BytesRecv count actual socket bytes (handshake and retries included); for
// loopback they are computed from the shared frame-size arithmetic, so a
// clean TCP run and a loopback run of the same workload report identical
// totals plus the TCP handshake frame.
type Stats struct {
	Calls     int64 // completed fetch calls
	Rows      int64 // feature rows fetched
	Neighbors int64 // adjacency entries fetched
	BytesSent int64 // request-direction wire bytes
	BytesRecv int64 // response-direction wire bytes
	Retries   int64 // transient failures retried
}

// ErrKind classifies transport failures so callers can branch on semantics
// instead of string-matching.
type ErrKind int

const (
	// ErrProto: malformed, truncated, corrupt, or oversized frame. Never
	// transient — the stream is unsynchronized and the connection is dropped.
	ErrProto ErrKind = iota
	// ErrMismatch: handshake incompatibility — protocol version, precision,
	// dimensionality, or graph version disagree.
	ErrMismatch
	// ErrUnavailable: the peer is unreachable or the connection died
	// (refused, reset, deadline exceeded). Transient: fetches are idempotent,
	// so the client redials and retries up to its budget.
	ErrUnavailable
	// ErrRejected: the peer processed the request and refused it (e.g. an
	// out-of-range node ID). Not transient — retrying would fail identically.
	ErrRejected
	// ErrClosed: the Conn was used after Close.
	ErrClosed
)

func (k ErrKind) String() string {
	switch k {
	case ErrProto:
		return "proto"
	case ErrMismatch:
		return "mismatch"
	case ErrUnavailable:
		return "unavailable"
	case ErrRejected:
		return "rejected"
	case ErrClosed:
		return "closed"
	}
	return "unknown"
}

// Error is the typed failure every transport operation returns.
type Error struct {
	Kind ErrKind
	Op   string // "dial", "fetch_rows", "fetch_neighbors", ...
	Msg  string
	Err  error // underlying cause, if any
}

func (e *Error) Error() string {
	s := fmt.Sprintf("transport: %s: %s", e.Op, e.Kind)
	if e.Msg != "" {
		s += ": " + e.Msg
	}
	if e.Err != nil {
		s += ": " + e.Err.Error()
	}
	return s
}

func (e *Error) Unwrap() error { return e.Err }

// Transient reports whether retrying the operation could succeed.
func (e *Error) Transient() bool { return e.Kind == ErrUnavailable }

// IsTransient reports whether err is a transport error worth retrying.
func IsTransient(err error) bool {
	var te *Error
	return errors.As(err, &te) && te.Transient()
}

// KindOf extracts the transport error kind from err, if it carries one.
func KindOf(err error) (ErrKind, bool) {
	var te *Error
	if errors.As(err, &te) {
		return te.Kind, true
	}
	return 0, false
}

// errf builds a typed transport error.
func errf(kind ErrKind, op string, cause error, format string, args ...any) *Error {
	return &Error{Kind: kind, Op: op, Msg: fmt.Sprintf(format, args...), Err: cause}
}

// CheckHello verifies a peer's handshake against what the caller expects to
// be on the other end: wire protocol, storage precision, and graph version
// must agree exactly (dim/row-count policy lives in store.Validate). Returns
// a typed ErrMismatch naming the first disagreement.
func CheckHello(got, want Hello) error {
	if got.Proto != want.Proto {
		return errf(ErrMismatch, "handshake", nil, "protocol version %d, want %d", got.Proto, want.Proto)
	}
	if got.Precision != want.Precision {
		return errf(ErrMismatch, "handshake", nil, "peer serves %s rows, want %s", got.Precision, want.Precision)
	}
	if got.GraphVersion != want.GraphVersion {
		return errf(ErrMismatch, "handshake", nil, "peer graph version %d, want %d", got.GraphVersion, want.GraphVersion)
	}
	return nil
}

// transientCause reports whether a raw I/O error is worth a redial: the
// peer was unreachable or the stream died mid-exchange.
func transientCause(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
		return true
	}
	if errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE) || errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
