package bench

import (
	"fmt"
	"time"

	"salient/internal/cache"
	"salient/internal/dataset"
	"salient/internal/serve"
	"salient/internal/train"
)

// ServingOpts configures the online-serving sweep.
type ServingOpts struct {
	Scale     float64       // arxiv stand-in scale
	Hidden    int           // model width
	Epochs    int           // warm-up training epochs
	Workers   int           // server batching workers
	MaxBatch  int           // micro-batch cap
	MaxDelay  time.Duration // micro-batch coalescing deadline
	Requests  int           // requests per load level
	CacheFrac float64       // GPU feature cache size as a fraction of N
	Seed      uint64
}

func (o *ServingOpts) defaults() {
	if o.Scale == 0 {
		o.Scale = 0.1
	}
	if o.Hidden == 0 {
		o.Hidden = 32
	}
	if o.Epochs == 0 {
		o.Epochs = 2
	}
	if o.Workers == 0 {
		o.Workers = 4
	}
	if o.MaxBatch == 0 {
		o.MaxBatch = 32
	}
	if o.MaxDelay == 0 {
		o.MaxDelay = 300 * time.Microsecond
	}
	if o.Requests == 0 {
		o.Requests = 2000
	}
	if o.CacheFrac == 0 {
		o.CacheFrac = 0.2
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// ServingSweep is the throughput-versus-latency study for the online serving
// layer (internal/serve): it first measures the server's closed-loop
// capacity, then offers open-loop load at fractions of that capacity and
// reports achieved throughput, rejection rate, micro-batch occupancy, tail
// latency, and feature-cache savings at each level.
//
// The expected shape is the classic serving curve: below capacity, latency
// sits near the coalescing deadline and nothing is rejected; at capacity,
// occupancy rises as coalescing kicks in; past capacity, admission control
// sheds the excess as rejections instead of letting latency collapse.
func ServingSweep(o ServingOpts) (Table, error) {
	o.defaults()
	t := Table{
		ID:    "serving",
		Title: "Online sampled-inference serving: offered load vs latency (§5 extension)",
		Header: []string{"Offered", "Achieved", "Rejected", "Occupancy",
			"p50", "p95", "p99", "CacheHit"},
	}
	ds, err := dataset.Load(dataset.Arxiv, o.Scale)
	if err != nil {
		return t, err
	}
	fanouts := []int{10, 5}
	tr, err := train.New(ds, train.Config{
		Arch: "SAGE", Hidden: o.Hidden, Layers: len(fanouts), Fanouts: fanouts,
		BatchSize: 128, Workers: o.Workers, Seed: o.Seed,
	})
	if err != nil {
		return t, err
	}
	if _, err := tr.Fit(o.Epochs); err != nil {
		return t, err
	}

	newServer := func() (*serve.Server, error) {
		return serve.New(tr.Model, ds, serve.Options{
			Fanouts:       fanouts,
			Workers:       o.Workers,
			MaxBatch:      o.MaxBatch,
			MaxDelay:      o.MaxDelay,
			QueueCapacity: 1024,
			Seed:          o.Seed + 13,
			CacheRows:     int(float64(ds.G.N) * o.CacheFrac),
			CachePolicy:   cache.StaticDegree,
		})
	}

	// Closed-loop calibration: saturate with parallel clients to find the
	// server's service capacity in requests/second.
	capacity, err := closedLoopCapacity(newServer, ds.Test, o.Requests)
	if err != nil {
		return t, err
	}

	for _, frac := range []float64{0.5, 1.0, 2.0} {
		st, achieved, err := openLoopLevel(newServer, ds.Test, frac*capacity, o.Requests)
		if err != nil {
			return t, err
		}
		rejFrac := 0.0
		if st.Submitted+st.Rejected > 0 {
			rejFrac = float64(st.Rejected) / float64(st.Submitted+st.Rejected)
		}
		t.AddRow(
			fmt.Sprintf("%.0f rps (%.1fx)", frac*capacity, frac),
			fmt.Sprintf("%.0f rps", achieved),
			pct(rejFrac),
			fmt.Sprintf("%.1f req/batch", st.Occupancy.Mean),
			ms(st.Latency.P50), ms(st.Latency.P95), ms(st.Latency.P99),
			pct(st.CacheHitRate()),
		)
	}
	t.AddNote("closed-loop capacity %.0f rps; %d requests/level; %d workers, batch<=%d, delay %v",
		capacity, o.Requests, o.Workers, o.MaxBatch, o.MaxDelay)
	t.AddNote("cache: static-degree, %.0f%% of nodes; rejection = admission control shedding past capacity",
		100*o.CacheFrac)
	return t, nil
}

// ms formats seconds as milliseconds.
func ms(sec float64) string { return fmt.Sprintf("%.2fms", sec*1e3) }

// closedLoopCapacity drives the server with enough always-busy clients to
// saturate it and returns the sustained service rate.
func closedLoopCapacity(newServer func() (*serve.Server, error), nodes []int32, requests int) (float64, error) {
	s, err := newServer()
	if err != nil {
		return 0, err
	}
	defer s.Close()
	wall := serve.DriveClosedLoop(s, nodes, 16, requests)
	return float64(requests) / wall.Seconds(), nil
}

// openLoopLevel offers load at a fixed rate and returns the server's stats
// for the level plus the achieved goodput in requests/second.
func openLoopLevel(newServer func() (*serve.Server, error), nodes []int32, rate float64, requests int) (serve.Stats, float64, error) {
	s, err := newServer()
	if err != nil {
		return serve.Stats{}, 0, err
	}
	wall := serve.DriveOpenLoop(s, nodes, rate, requests)
	s.Close()
	st := s.Stats()
	return st, float64(st.Served) / wall.Seconds(), nil
}
