package event

import "testing"

func TestWindowQuantileMatchesRecorderWhileUnderCapacity(t *testing.T) {
	w := NewWindow(64)
	var r Recorder
	vals := []float64{5, 1, 9, 3, 7, 2, 8, 4, 6, 0}
	for _, v := range vals {
		w.Add(v)
		r.Add(v)
	}
	for _, p := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if got, want := w.Quantile(p), r.Quantile(p); got != want {
			t.Fatalf("Quantile(%g) = %g, want %g (Recorder convention)", p, got, want)
		}
	}
}

func TestWindowEvictsOldest(t *testing.T) {
	w := NewWindow(4)
	for v := 1; v <= 10; v++ {
		w.Add(float64(v))
	}
	if w.Count() != 4 {
		t.Fatalf("Count = %d, want 4", w.Count())
	}
	// Window now holds {7,8,9,10}: the old small samples must be gone.
	if got := w.Quantile(0); got != 7 {
		t.Fatalf("min of window = %g, want 7 (oldest samples evicted)", got)
	}
	if got := w.Quantile(1); got != 10 {
		t.Fatalf("max of window = %g, want 10", got)
	}
}

func TestWindowInterleavedQuantiles(t *testing.T) {
	// Quantile reads between Adds must observe every sample added so far
	// (the lazy sort must invalidate correctly).
	w := NewWindow(8)
	w.Add(3)
	if got := w.Quantile(1); got != 3 {
		t.Fatalf("after Add(3): max %g, want 3", got)
	}
	w.Add(9)
	if got := w.Quantile(1); got != 9 {
		t.Fatalf("after Add(9): max %g, want 9", got)
	}
	w.Add(1)
	if got := w.Quantile(0); got != 1 {
		t.Fatalf("after Add(1): min %g, want 1", got)
	}
}

func TestWindowReset(t *testing.T) {
	w := NewWindow(4)
	w.Add(5)
	w.Reset()
	if w.Count() != 0 || w.Quantile(0.5) != 0 {
		t.Fatalf("Reset did not clear the window: count %d", w.Count())
	}
	w.Add(2)
	if got := w.Quantile(0.5); got != 2 {
		t.Fatalf("window unusable after Reset: p50 %g, want 2", got)
	}
}

func TestWindowMinimumCapacity(t *testing.T) {
	w := NewWindow(0)
	if w.Capacity() != 1 {
		t.Fatalf("Capacity = %d, want floor of 1", w.Capacity())
	}
	w.Add(1)
	w.Add(2)
	if got := w.Quantile(0.5); got != 2 {
		t.Fatalf("capacity-1 window p50 = %g, want most recent sample 2", got)
	}
}
