package fleet

import "testing"

func TestResultCacheVersionedHit(t *testing.T) {
	c := newResultCache(8)
	if _, ok := c.Get(5, 0); ok {
		t.Fatal("empty cache hit")
	}
	c.Put(5, 42, 0)
	if label, ok := c.Get(5, 0); !ok || label != 42 {
		t.Fatalf("Get(5, 0) = %d, %v; want 42, true", label, ok)
	}
	// A version advance misses — the memoized answer may be stale.
	if _, ok := c.Get(5, 1); ok {
		t.Fatal("stale entry hit at advanced version")
	}
	// And the miss dropped the dead entry.
	if c.Len() != 0 {
		t.Fatalf("stale entry still resident, Len() = %d", c.Len())
	}
	st := c.Stats()
	if st.Lookups != 3 || st.Hits != 1 || st.Stores != 1 || st.Invalidated != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestResultCachePutReplaces(t *testing.T) {
	c := newResultCache(4)
	c.Put(1, 10, 0)
	c.Put(1, 11, 1)
	if label, ok := c.Get(1, 1); !ok || label != 11 {
		t.Fatalf("Get(1, 1) = %d, %v; want 11, true", label, ok)
	}
	if c.Len() != 1 {
		t.Fatalf("Len() = %d after replacing put", c.Len())
	}
}

func TestResultCacheCapacityAndClock(t *testing.T) {
	c := newResultCache(4)
	for v := int32(0); v < 4; v++ {
		c.Put(v, v, 0)
	}
	// Reference node 0 so CLOCK prefers other victims.
	if _, ok := c.Get(0, 0); !ok {
		t.Fatal("node 0 missing")
	}
	for v := int32(10); v < 20; v++ {
		c.Put(v, v, 0)
		if c.Len() > 4 {
			t.Fatalf("cache grew past capacity: %d", c.Len())
		}
	}
	if c.Len() != 4 {
		t.Fatalf("Len() = %d, want full capacity 4", c.Len())
	}
}

func TestResultCacheInvalidateBelow(t *testing.T) {
	c := newResultCache(8)
	c.Put(1, 1, 3)
	c.Put(2, 2, 5)
	c.Put(3, 3, 7)
	c.InvalidateBelow(6)
	if c.Len() != 1 {
		t.Fatalf("Len() = %d after sweep, want 1", c.Len())
	}
	if _, ok := c.Get(3, 7); !ok {
		t.Fatal("entry at version 7 swept by InvalidateBelow(6)")
	}
	if st := c.Stats(); st.Invalidated != 2 {
		t.Fatalf("Invalidated = %d, want 2", st.Invalidated)
	}
}

func TestResultCacheDisabled(t *testing.T) {
	if c := newResultCache(0); c != nil {
		t.Fatal("newResultCache(0) should be nil (disabled)")
	}
}
