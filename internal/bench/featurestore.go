package bench

import (
	"fmt"
	"math"
	"time"

	"salient/internal/cache"
	"salient/internal/dataset"
	"salient/internal/half"
	"salient/internal/partition"
	"salient/internal/rng"
	"salient/internal/sampler"
	"salient/internal/slicing"
	"salient/internal/store"
)

// FeatureStoreOpts configures the feature-store layout/policy sweep.
type FeatureStoreOpts struct {
	Scale      float64   // arxiv stand-in scale
	Parts      int       // shard count for the sharded configurations
	BatchSize  int       // seeds per gathered batch
	Fanouts    []int     // sampling fanouts for batch expansion
	Rounds     int       // timed passes over the batch set per store
	CacheFracs []float64 // cached(top-K) capacities as fractions of N
	Seed       uint64
}

func (o *FeatureStoreOpts) defaults() {
	if o.Scale == 0 {
		o.Scale = 0.3
	}
	if o.Parts == 0 {
		o.Parts = 4
	}
	if o.BatchSize == 0 {
		o.BatchSize = 16
	}
	if len(o.Fanouts) == 0 {
		o.Fanouts = []int{10, 5}
	}
	if o.Rounds == 0 {
		o.Rounds = 3
	}
	if len(o.CacheFracs) == 0 {
		o.CacheFracs = []float64{0.05, 0.2}
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// fsResult is one store configuration's measured sweep row.
type fsResult struct {
	name       string
	rows       int64 // feature rows staged across all timed gathers
	secs       float64
	stagedMB   float64
	movedMB    float64
	savedMB    float64
	remoteFrac float64
	hitRate    float64
}

// throughputMBs returns staged MB per second of gather time.
func (r fsResult) throughputMBs() float64 {
	if r.secs == 0 {
		return 0
	}
	return r.stagedMB / r.secs
}

// featureStoreResults runs the sweep and returns structured rows. Every
// store gathers the identical batch set (part-local seed batches under the
// LDG assignment, the access pattern of a partition-aware consumer), and
// every staged buffer is checksum-verified against the flat store — layout
// and caching may change accounting, never contents.
func featureStoreResults(o FeatureStoreOpts) ([]fsResult, error) {
	o.defaults()
	ds, err := dataset.Load(dataset.Arxiv, o.Scale)
	if err != nil {
		return nil, err
	}
	ldg, err := partition.LDGMultiPass(ds.G, o.Parts, 2)
	if err != nil {
		return nil, err
	}
	rand, err := partition.Random(ds.G, o.Parts, o.Seed)
	if err != nil {
		return nil, err
	}

	// Part-local seed batches: group the training split by LDG part and cut
	// fixed-size batches inside each part, then expand with the fast sampler.
	byPart := make([][]int32, o.Parts)
	for _, v := range ds.Train {
		byPart[ldg.Part[v]] = append(byPart[ldg.Part[v]], v)
	}
	sm := sampler.New(ds.G, o.Fanouts, sampler.FastConfig())
	var lists [][]int32
	var batches []int
	for p := range byPart {
		for b := 0; b+o.BatchSize <= len(byPart[p]) && b < 8*o.BatchSize; b += o.BatchSize {
			seeds := byPart[p][b : b+o.BatchSize]
			m := sm.Sample(rng.New(o.Seed+uint64(p*8191+b)), seeds).Clone()
			lists = append(lists, m.NodeIDs)
			batches = append(batches, len(seeds))
		}
	}
	if len(lists) == 0 {
		return nil, fmt.Errorf("featurestore: no batches at scale %g", o.Scale)
	}

	flat := store.NewFlat(ds)
	configs := []struct {
		name string
		st   store.FeatureStore
	}{{name: "flat", st: flat}}
	shardedRand, err := store.NewSharded(ds, rand)
	if err != nil {
		return nil, err
	}
	configs = append(configs, struct {
		name string
		st   store.FeatureStore
	}{fmt.Sprintf("sharded(P=%d,random)", o.Parts), shardedRand})
	shardedLDG, err := store.NewSharded(ds, ldg)
	if err != nil {
		return nil, err
	}
	configs = append(configs, struct {
		name string
		st   store.FeatureStore
	}{fmt.Sprintf("sharded(P=%d,ldg)", o.Parts), shardedLDG})
	for _, frac := range o.CacheFracs {
		c, err := store.NewCached(store.NewFlat(ds), ds.G, int(float64(ds.G.N)*frac), cache.StaticDegree)
		if err != nil {
			return nil, err
		}
		configs = append(configs, struct {
			name string
			st   store.FeatureStore
		}{fmt.Sprintf("cached(top-%.0f%%)", 100*frac), c})
	}
	// The precision axis: the same workload over quantized and widened flat
	// storage, plus the int8 sharded layout — the 2× byte saving must survive
	// composition with placement.
	configs = append(configs, struct {
		name string
		st   store.FeatureStore
	}{"flat(fp32)", store.NewFlatPrec(ds, half.FP32)})
	configs = append(configs, struct {
		name string
		st   store.FeatureStore
	}{"flat(int8)", store.NewFlatPrec(ds, half.Int8)})
	shardedInt8, err := store.NewShardedPrec(ds, ldg, half.Int8)
	if err != nil {
		return nil, err
	}
	configs = append(configs, struct {
		name string
		st   store.FeatureStore
	}{fmt.Sprintf("sharded(P=%d,ldg,int8)", o.Parts), shardedInt8})

	// Reference checksums per storage precision from a flat store at that
	// precision (untimed pass) — layout and caching may change accounting,
	// never staged contents.
	refSums := map[half.Precision][]uint64{}
	refFor := func(prec half.Precision) ([]uint64, error) {
		if sums, ok := refSums[prec]; ok {
			return sums, nil
		}
		ref := store.NewFlatPrec(ds, prec)
		sums := make([]uint64, len(lists))
		for i, ids := range lists {
			buf := slicing.NewPinned(len(ids), ds.FeatDim, batches[i])
			if err := ref.Gather(buf, ids, batches[i]); err != nil {
				return nil, err
			}
			sums[i] = stagedChecksum(buf, batches[i])
		}
		refSums[prec] = sums
		return sums, nil
	}

	var out []fsResult
	for _, cfg := range configs {
		prec := store.PrecisionOf(cfg.st)
		wantSums, err := refFor(prec)
		if err != nil {
			return nil, err
		}
		buf := slicing.NewPinned(len(lists[0]), ds.FeatDim, o.BatchSize)
		// Untimed verification pass: contents must equal the flat reference.
		// Its gathers (and cache touches) are excluded from the accounting by
		// the reset below, so the timed rounds report pure gather cost.
		for i, ids := range lists {
			if err := cfg.st.Gather(buf, ids, batches[i]); err != nil {
				return nil, fmt.Errorf("featurestore: %s: %w", cfg.name, err)
			}
			if got := stagedChecksum(buf, batches[i]); got != wantSums[i] {
				return nil, fmt.Errorf("featurestore: %s staged batch %d differs from flat", cfg.name, i)
			}
		}
		cfg.st.ResetStats()
		start := time.Now()
		for round := 0; round < o.Rounds; round++ {
			for i, ids := range lists {
				if err := cfg.st.Gather(buf, ids, batches[i]); err != nil {
					return nil, fmt.Errorf("featurestore: %s: %w", cfg.name, err)
				}
			}
		}
		secs := time.Since(start).Seconds()
		st := cfg.st.Stats()
		out = append(out, fsResult{
			name:       cfg.name,
			rows:       st.Rows,
			secs:       secs,
			stagedMB:   float64(st.Rows) * float64(prec.RowBytes(ds.FeatDim)) / (1 << 20),
			movedMB:    float64(st.BytesMoved) / (1 << 20),
			savedMB:    float64(st.BytesSaved) / (1 << 20),
			remoteFrac: st.RemoteFrac(),
			hitRate:    st.HitRate(),
		})
	}
	return out, nil
}

// stagedChecksum is an FNV-1a over a staged batch's features (at whatever
// precision the buffer holds, per-row scales included) and labels.
func stagedChecksum(buf *slicing.Pinned, batch int) uint64 {
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	switch buf.Prec {
	case half.FP32:
		for _, f := range buf.Feat32[:buf.Rows*buf.Dim] {
			mix(uint64(math.Float32bits(f)))
		}
	case half.Int8:
		for _, q := range buf.Feat8[:buf.Rows*buf.Dim] {
			mix(uint64(uint8(q)))
		}
		for _, s := range buf.Scales[:buf.Rows] {
			mix(uint64(math.Float32bits(s)))
		}
	default:
		for _, f := range buf.Feat[:buf.Rows*buf.Dim] {
			mix(uint64(uint16(f)))
		}
	}
	for i := 0; i < batch; i++ {
		mix(uint64(uint32(buf.Labels[i])))
	}
	return h
}

// FeatureStoreSweep compares the feature-store layouts and policies on one
// batch workload: gather throughput, bytes actually transferred host to
// device, bytes saved by caching, and cross-shard traffic under LDG versus
// random placement (§4.2 data path, §8 future work).
func FeatureStoreSweep(o FeatureStoreOpts) (Table, error) {
	o.defaults()
	t := Table{
		ID:     "featurestore",
		Title:  "Feature-store layouts: gather throughput and transfer volume (§4.2/§8 extension)",
		Header: []string{"Store", "Gather", "Staged", "Moved", "Saved", "Remote", "HitRate"},
	}
	results, err := featureStoreResults(o)
	if err != nil {
		return t, err
	}
	for _, r := range results {
		t.AddRow(
			r.name,
			fmt.Sprintf("%.0f MB/s", r.throughputMBs()),
			fmt.Sprintf("%.1f MB", r.stagedMB),
			fmt.Sprintf("%.1f MB", r.movedMB),
			fmt.Sprintf("%.1f MB", r.savedMB),
			pct(r.remoteFrac),
			pct(r.hitRate),
		)
	}
	t.AddNote("identical part-local batches per store (batch=%d, fanouts %v, %d rounds); staged contents checksum-equal across stores",
		o.BatchSize, o.Fanouts, o.Rounds)
	t.AddNote("Moved excludes cache-resident rows; Remote = rows fetched off the batch's home shard")
	return t, nil
}
