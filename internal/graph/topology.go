package graph

import "fmt"

// Topology is the adjacency seam the rest of the system reads graphs
// through: everything downstream of dataset load — neighborhood sampling,
// the alternative sampling families, caching, partitioning, full-graph
// inference — consumes adjacency exclusively via this interface, so the
// concrete representation (a static CSR, an immutable Snapshot of a mutable
// Dynamic graph, an induced subgraph) can vary without touching consumers.
//
// Implementations must be immutable, or at least unchanging for as long as
// a consumer holds them: samplers, caches, and executors read Topology
// concurrently and without synchronization. Mutable graphs hand out
// immutable Snapshot views instead of implementing Topology directly.
type Topology interface {
	// NumNodes returns the number of nodes; valid IDs are [0, NumNodes).
	NumNodes() int32
	// NumEdges returns the number of directed adjacency entries.
	NumEdges() int64
	// Degree returns the out-degree of v.
	Degree(v int32) int32
	// Neighbors returns the adjacency slice of v. The returned slice aliases
	// internal storage and must not be mutated; it stays valid for the
	// lifetime of the Topology.
	Neighbors(v int32) []int32
}

// NumNodes implements Topology.
func (g *CSR) NumNodes() int32 { return g.N }

// View is a pinned, immutable, version-numbered Topology — what epoch- and
// batch-scoped consumers actually hold while they sample. *Snapshot is the
// single-address-space implementation; *Partitioned is the distributed one,
// serving local partitions natively and remote adjacency over a transport.
// Like every Topology, a View must be safe for concurrent readers.
type View interface {
	Topology
	// Version returns the logical version of the graph this view captured.
	Version() uint64
}

// Viewer yields the current View of a possibly mutable graph. Epoch-scoped
// consumers (the prep executors, the DDP trainer) pin exactly one View per
// epoch so mid-epoch determinism is a property of the pin, not of the graph
// holding still; per-micro-batch consumers (the serving layer) re-pin at
// each batch for freshness.
//
// *Dynamic, *Snapshot, and *Partitioned all implement Viewer — a pinned
// view returns itself, so "always the latest view" and "this one pinned
// view" wire through the same seam.
type Viewer interface {
	View() View
}

// Snapshotter is the concrete-snapshot ancestor of Viewer, kept for
// consumers that need a *Snapshot specifically (compaction, the serving
// layer's dynamic path).
//
// Deprecated: consumers on the data path should accept a Viewer, which
// distributed topologies also implement.
type Snapshotter interface {
	Snapshot() *Snapshot
}

// Snapshot is an immutable Topology view of a graph at one version. For
// nodes untouched by deltas it aliases the base CSR's adjacency directly;
// nodes with post-base edges (and nodes added after the base) read from an
// overlay of merged adjacency slices materialized when the snapshot was
// taken — so Neighbors never allocates, which is what keeps steady-state
// sampling over a snapshot allocation-free.
type Snapshot struct {
	version uint64
	n       int32
	edges   int64
	base    *CSR
	// overlay holds the full (base + delta) adjacency for every node the
	// deltas touched; nil when the snapshot carries no deltas (the static
	// and freshly-compacted cases), making the hot-path branch one nil test.
	overlay map[int32][]int32
}

// Static wraps an immutable CSR as a version-0 Snapshot, the degenerate
// "never changes" case: consumers that accept a Snapshotter serve static
// graphs through the exact same code path as dynamic ones.
func Static(g *CSR) *Snapshot {
	return &Snapshot{n: g.N, edges: g.NumEdges(), base: g}
}

// Snapshot implements Snapshotter: a snapshot is its own (only) view.
func (s *Snapshot) Snapshot() *Snapshot { return s }

// View implements Viewer: a snapshot is its own pinned view.
func (s *Snapshot) View() View { return s }

// Version returns the logical version of the graph this snapshot captured:
// 0 for a static graph, and the mutation count of a Dynamic graph at pin
// time. Compaction changes the representation, never the version.
func (s *Snapshot) Version() uint64 { return s.version }

// NumNodes implements Topology.
func (s *Snapshot) NumNodes() int32 { return s.n }

// NumEdges implements Topology.
func (s *Snapshot) NumEdges() int64 { return s.edges }

// Degree implements Topology.
func (s *Snapshot) Degree(v int32) int32 {
	if s.overlay != nil {
		if ns, ok := s.overlay[v]; ok {
			return int32(len(ns))
		}
	}
	if v < s.base.N {
		return s.base.Degree(v)
	}
	return 0
}

// Neighbors implements Topology. The returned slice aliases either the base
// CSR or the snapshot's merged overlay; both are immutable for the
// snapshot's lifetime, and neither path allocates.
func (s *Snapshot) Neighbors(v int32) []int32 {
	if s.overlay != nil {
		if ns, ok := s.overlay[v]; ok {
			return ns
		}
	}
	if v < s.base.N {
		return s.base.Neighbors(v)
	}
	return nil
}

// CSR materializes the snapshot as a standalone CSR (a copy; the snapshot's
// base is never aliased mutably). Compaction uses it, and it gives static
// consumers an escape hatch off the seam.
func (s *Snapshot) CSR() *CSR {
	ptr := make([]int64, s.n+1)
	for v := int32(0); v < s.n; v++ {
		ptr[v+1] = ptr[v] + int64(s.Degree(v))
	}
	adj := make([]int32, ptr[s.n])
	for v := int32(0); v < s.n; v++ {
		copy(adj[ptr[v]:ptr[v+1]], s.Neighbors(v))
	}
	return &CSR{N: s.n, Ptr: ptr, Adj: adj}
}

// Validate checks the snapshot's structural invariants: overlay and base
// adjacency entries in range and edge accounting consistent.
func (s *Snapshot) Validate() error {
	if err := s.base.Validate(); err != nil {
		return fmt.Errorf("graph: snapshot base: %w", err)
	}
	var overlayEdges int64
	for v, ns := range s.overlay {
		if v < 0 || v >= s.n {
			return fmt.Errorf("graph: snapshot overlay node %d out of range [0,%d)", v, s.n)
		}
		for _, u := range ns {
			if u < 0 || u >= s.n {
				return fmt.Errorf("graph: snapshot overlay edge (%d,%d) out of range", v, u)
			}
		}
		overlayEdges += int64(len(ns))
		if v < s.base.N {
			overlayEdges -= int64(s.base.Degree(v))
		}
	}
	if got := s.base.NumEdges() + overlayEdges; got != s.edges {
		return fmt.Errorf("graph: snapshot edge count %d, adjacency holds %d", s.edges, got)
	}
	return nil
}

// Induced extracts the subgraph of t induced by the given node set, with
// local ID i corresponding to nodes[i]; edges are retained only when both
// endpoints are in the set. Duplicate entries in nodes are rejected. This is
// the Topology-seam generalization of (*CSR).Induced.
func Induced(t Topology, nodes []int32) (*CSR, error) {
	n := t.NumNodes()
	local := make(map[int32]int32, len(nodes))
	for i, v := range nodes {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("graph: induced node %d out of range", v)
		}
		if _, dup := local[v]; dup {
			return nil, fmt.Errorf("graph: duplicate node %d in induced set", v)
		}
		local[v] = int32(i)
	}
	sub := &CSR{N: int32(len(nodes)), Ptr: make([]int64, len(nodes)+1)}
	for i, v := range nodes {
		for _, u := range t.Neighbors(v) {
			if lu, ok := local[u]; ok {
				sub.Adj = append(sub.Adj, lu)
			}
		}
		sub.Ptr[i+1] = int64(len(sub.Adj))
	}
	return sub, nil
}
