// Package consumer is an arenalifecycle golden-test fixture: consumers of
// *prep.Batch must Release on every path and never read arena-backed fields
// after Release.
package consumer

import (
	"salient/internal/mfg"
	"salient/internal/prep"
)

// Drain releases every batch, with a panic-terminated failure path: legal.
func Drain(s *prep.Stream) int {
	n := 0
	for b := range s.C {
		if b.Err != nil {
			panic(b.Err) //lint:allow panicdiscipline fixture; failure paths terminate the walk
		}
		n++
		b.Release()
	}
	return n
}

// LeakAll never releases.
func LeakAll(s *prep.Stream) int {
	n := 0
	for b := range s.C { // want "batch b may leak"
		if b.Err == nil {
			n++
		}
	}
	return n
}

// LeakOnError releases on the happy path but lets errored batches slip out
// through continue, stalling the stream.
func LeakOnError(s *prep.Stream) int {
	n := 0
	for b := range s.C { // want "batch b may leak"
		if b.Err != nil {
			continue
		}
		n++
		b.Release()
	}
	return n
}

// NextOne handles the comma-ok receive: on the closed-channel branch no
// batch was acquired, so the early return is legal.
func NextOne(ch <-chan *prep.Batch) bool {
	b, ok := <-ch
	if !ok {
		return false
	}
	b.Release()
	return true
}

// UseAfterRelease reads an arena-backed field after Release, when the arena
// may already carry the next batch.
func UseAfterRelease(next func() *prep.Batch) *mfg.MFG {
	b := next()
	b.Release()
	return b.MFG // want "read of b\.MFG after Release"
}

// ReadThenRelease consumes the batch before releasing: legal.
func ReadThenRelease(next func() *prep.Batch) int64 {
	b := next()
	n := b.TransferBytes()
	b.Release()
	return n
}

// Handoff transfers ownership over a channel: the receiver releases.
func Handoff(s *prep.Stream, sink chan<- *prep.Batch) {
	for b := range s.C {
		sink <- b
	}
}

// HoldForever documents an intentional leak.
func HoldForever(next func() *prep.Batch) {
	b := next() //lint:allow arenalifecycle fixture for the suppression path; batch intentionally pinned for process lifetime
	if b.Err != nil {
		return
	}
}
