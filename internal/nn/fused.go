package nn

import (
	"salient/internal/mfg"
	"salient/internal/slicing"
	"salient/internal/tensor"
)

// FusedModel is implemented by architectures whose first layer can consume a
// fused gather+aggregate batch (slicing.Fused): the pre-aggregated neighbor
// tensor and the widened x_target prefix replace the raw NumSrc×dim feature
// tensor, so layer 1 skips its own aggregation pass.
//
// FusedOp names the aggregation the store-side kernel must run — it must
// match what the first layer would compute itself (mean for SAGE, sum for
// GIN), which is what makes fused training bit-identical to staged training.
// Backward after a fused forward accumulates the same parameter gradients
// but returns no input gradient for layer 0 (the raw-feature gradient is
// discarded in staged training too, since features are inputs, not
// parameters).
//
// GAT and SAGE-RI do not implement FusedModel: attention weights and
// root-injected residuals need per-edge source rows, not a pre-reduced
// aggregate. Executors must reject a fused pipeline for those architectures
// at wiring time.
type FusedModel interface {
	Model
	// FusedOp returns the aggregation the fused gather must perform.
	FusedOp() slicing.AggOp
	// ForwardFused runs the forward pass from a fused batch: agg and xt are
	// the NumDst×in aggregate and x_target tensors of g's outermost block.
	ForwardFused(agg, xt *tensor.Dense, g *mfg.MFG, train bool) *tensor.Dense
}
