package transport

import "sync"

// Loopback connects a Conn directly to a Handler in the same address space.
// Fetches run synchronously on the caller's goroutine and the handler writes
// straight into the caller's buffers — no frames are built, so the data path
// through loopback is bit-identical to a direct local gather. Wire bytes are
// still charged, computed with the exact frame-size arithmetic the TCP codec
// emits, which makes loopback the accounting oracle for the real wire.
func Loopback(h Handler) Conn {
	return &loopbackConn{h: h, hello: h.Hello()}
}

type loopbackConn struct {
	h     Handler
	hello Hello

	mu     sync.Mutex
	stats  Stats
	closed bool
}

func (c *loopbackConn) Hello() Hello { return c.hello }

func (c *loopbackConn) FetchRows(ids []int32, dst *Rows) (int64, error) {
	if err := c.check("fetch_rows"); err != nil {
		return 0, err
	}
	if err := c.h.FetchRows(ids, dst); err != nil {
		return 0, reject("fetch_rows", err)
	}
	wire := RowsReqFrameBytes(len(ids)) + RowsRespFrameBytes(len(ids), dst.Dim, dst.Prec)
	c.mu.Lock()
	c.stats.Calls++
	c.stats.Rows += int64(len(ids))
	c.stats.BytesSent += RowsReqFrameBytes(len(ids))
	c.stats.BytesRecv += RowsRespFrameBytes(len(ids), dst.Dim, dst.Prec)
	c.mu.Unlock()
	return wire, nil
}

func (c *loopbackConn) FetchNeighbors(ids []int32, dst *Adjacency) (int64, error) {
	if err := c.check("fetch_neighbors"); err != nil {
		return 0, err
	}
	if err := c.h.FetchNeighbors(ids, dst); err != nil {
		return 0, reject("fetch_neighbors", err)
	}
	total := int64(len(dst.Adj))
	wire := NeighReqFrameBytes(len(ids)) + NeighRespFrameBytes(len(ids), total)
	c.mu.Lock()
	c.stats.Calls++
	c.stats.Neighbors += total
	c.stats.BytesSent += NeighReqFrameBytes(len(ids))
	c.stats.BytesRecv += NeighRespFrameBytes(len(ids), total)
	c.mu.Unlock()
	return wire, nil
}

func (c *loopbackConn) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

func (c *loopbackConn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return nil
}

func (c *loopbackConn) check(op string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return errf(ErrClosed, op, nil, "connection closed")
	}
	return nil
}

// reject wraps a handler failure: already-typed transport errors pass
// through, anything else becomes a typed rejection (the peer processed the
// request and refused it).
func reject(op string, err error) error {
	if _, ok := KindOf(err); ok {
		return err
	}
	return errf(ErrRejected, op, err, "peer rejected request")
}
