package dataset

import (
	"bytes"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	ds, err := Load(Arxiv, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != ds.Name || got.NumClasses != ds.NumClasses || got.FeatDim != ds.FeatDim {
		t.Fatalf("metadata mismatch: %+v vs %+v", got.Name, ds.Name)
	}
	if got.G.N != ds.G.N || got.G.NumEdges() != ds.G.NumEdges() {
		t.Fatal("graph shape mismatch")
	}
	for v := int32(0); v < ds.G.N; v++ {
		a, b := ds.G.Neighbors(v), got.G.Neighbors(v)
		if len(a) != len(b) {
			t.Fatalf("node %d degree mismatch", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %d adjacency differs", v)
			}
		}
	}
	for i := range ds.FeatHalf {
		if ds.FeatHalf[i] != got.FeatHalf[i] {
			t.Fatalf("feature %d differs", i)
		}
	}
	for i := range ds.Labels {
		if ds.Labels[i] != got.Labels[i] {
			t.Fatalf("label %d differs", i)
		}
	}
	if len(got.Train) != len(ds.Train) || len(got.Val) != len(ds.Val) || len(got.Test) != len(ds.Test) {
		t.Fatal("split sizes differ")
	}
	// Recovered float32 features match the half widening exactly.
	if got.Feat.MaxAbsDiff(ds.Feat) != 0 {
		t.Fatal("recovered float features differ from original widening")
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	ds, err := Load(Arxiv, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.Save(&buf); err != nil {
		t.Fatal(err)
	}
	pristine := buf.Bytes()

	// Flip one payload byte: checksum must catch it.
	corrupted := append([]byte(nil), pristine...)
	corrupted[len(corrupted)/2] ^= 0xFF
	if _, err := LoadFrom(bytes.NewReader(corrupted)); err == nil {
		t.Fatal("corrupted payload accepted")
	}

	// Truncate: must be rejected.
	if _, err := LoadFrom(bytes.NewReader(pristine[:len(pristine)/2])); err == nil {
		t.Fatal("truncated container accepted")
	}

	// Wrong magic with a fixed-up checksum: still rejected at the magic.
	bad := append([]byte(nil), pristine...)
	copy(bad, "WRONGMAG")
	fixCRC(bad)
	if _, err := LoadFrom(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}

	// Empty input.
	if _, err := LoadFrom(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

// fixCRC recomputes the trailing checksum after test mutations.
func fixCRC(b []byte) {
	payload := b[:len(b)-4]
	sum := crc32ChecksumIEEE(payload)
	b[len(b)-4] = byte(sum)
	b[len(b)-3] = byte(sum >> 8)
	b[len(b)-2] = byte(sum >> 16)
	b[len(b)-1] = byte(sum >> 24)
}

func TestSaveLoadFile(t *testing.T) {
	ds, err := Load(Products, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "products.salient")
	if err := ds.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind")
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.G.N != ds.G.N {
		t.Fatal("file round trip lost nodes")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.salient")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestLoadedDatasetIsTrainable(t *testing.T) {
	// The acid test: a round-tripped dataset behaves identically for
	// sampling (same graph, features, splits).
	ds, err := Load(Arxiv, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range ds.Train {
		if got.Train[i] != v {
			t.Fatal("train split differs")
		}
	}
	if err := got.G.Validate(); err != nil {
		t.Fatal(err)
	}
}

// crc32ChecksumIEEE proxies the stdlib for test fixups.
func crc32ChecksumIEEE(b []byte) uint32 { return crc32.ChecksumIEEE(b) }
