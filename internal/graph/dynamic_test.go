package graph

import (
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// adjSets returns the neighbor multiset of every node of t, sorted per node
// so representation (CSR vs overlay, pre vs post compaction) cannot matter.
func adjSets(t Topology) [][]int32 {
	out := make([][]int32, t.NumNodes())
	for v := int32(0); v < t.NumNodes(); v++ {
		ns := append([]int32{}, t.Neighbors(v)...)
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
		out[v] = ns
	}
	return out
}

// adjSetsUnique is adjSets with duplicates collapsed — the comparison basis
// against FromEdgeList references, which keep duplicate pairs while Dynamic
// enforces set semantics.
func adjSetsUnique(t Topology) [][]int32 {
	out := adjSets(t)
	for v, ns := range out {
		uniq := ns[:0]
		var prev int32 = -1
		for i, u := range ns {
			if i == 0 || u != prev {
				uniq = append(uniq, u)
				prev = u
			}
		}
		out[v] = uniq
	}
	return out
}

func mustCSR(t *testing.T, n int32, src, dst []int32) *CSR {
	t.Helper()
	g, err := FromEdgeList(n, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestStaticSnapshotAliasesBase(t *testing.T) {
	g := mustCSR(t, 4, []int32{0, 1, 2}, []int32{1, 2, 3})
	s := Static(g)
	if s.Version() != 0 {
		t.Fatalf("static snapshot version %d, want 0", s.Version())
	}
	if s.Snapshot() != s {
		t.Fatal("a snapshot must be its own Snapshotter")
	}
	if s.NumNodes() != g.N || s.NumEdges() != g.NumEdges() {
		t.Fatalf("static snapshot shape %d/%d, want %d/%d", s.NumNodes(), s.NumEdges(), g.N, g.NumEdges())
	}
	for v := int32(0); v < g.N; v++ {
		ns, base := s.Neighbors(v), g.Neighbors(v)
		if len(ns) != len(base) {
			t.Fatalf("node %d: snapshot degree %d, base %d", v, len(ns), len(base))
		}
		if len(ns) > 0 && &ns[0] != &base[0] {
			t.Fatalf("node %d: zero-delta snapshot must alias base adjacency", v)
		}
	}
}

func TestDynamicZeroDeltaIsBase(t *testing.T) {
	g := mustCSR(t, 5, []int32{0, 0, 1, 3}, []int32{1, 2, 4, 3})
	d, err := NewDynamic(g, DynamicOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := d.Snapshot()
	if s.Version() != 0 {
		t.Fatalf("version %d, want 0", s.Version())
	}
	if s2 := d.Snapshot(); s2 != s {
		t.Fatal("snapshot of an unchanged graph must be cached (same pointer)")
	}
	if !reflect.DeepEqual(adjSets(s), adjSets(g)) {
		t.Fatal("zero-delta snapshot adjacency differs from base")
	}
	// Zero-delta reads must alias the base arrays directly (this is what
	// keeps the dynamic path bit-identical AND equally fast).
	if ns := s.Neighbors(0); len(ns) > 0 && &ns[0] != &g.Neighbors(0)[0] {
		t.Fatal("zero-delta snapshot must alias base adjacency")
	}
}

func TestDynamicAddEdgesAndNodes(t *testing.T) {
	g := mustCSR(t, 3, []int32{0}, []int32{1})
	d, err := NewDynamic(g, DynamicOptions{CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	old := d.Snapshot()

	if _, err := d.AddEdges([]int32{0, 2}, []int32{2, 0}); err != nil {
		t.Fatal(err)
	}
	first, err := d.AddNodes(2)
	if err != nil {
		t.Fatal(err)
	}
	if first != 3 {
		t.Fatalf("first new node %d, want 3", first)
	}
	if _, err := d.AddEdges([]int32{3, 4}, []int32{4, 1}); err != nil {
		t.Fatal(err)
	}
	if v := d.Version(); v != 3 {
		t.Fatalf("version %d after 3 mutations, want 3", v)
	}

	s := d.Snapshot()
	if s.Version() != 3 || s.NumNodes() != 5 || s.NumEdges() != g.NumEdges()+4 {
		t.Fatalf("snapshot version=%d n=%d e=%d", s.Version(), s.NumNodes(), s.NumEdges())
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	want := [][]int32{{1, 2}, {}, {0}, {4}, {1}}
	if got := adjSets(s); !reflect.DeepEqual(got, want) {
		t.Fatalf("snapshot adjacency %v, want %v", got, want)
	}
	// The pre-update snapshot is immutable: still the old view.
	if old.NumNodes() != 3 || old.NumEdges() != 1 || old.Degree(0) != 1 {
		t.Fatal("earlier snapshot mutated by later updates")
	}

	// Out-of-range edges are rejected atomically.
	if _, err := d.AddEdges([]int32{0, 0}, []int32{1, 99}); err == nil {
		t.Fatal("out-of-range AddEdges accepted")
	}
	// Duplicate inserts are dropped, not double-counted.
	if n, err := d.AddEdges([]int32{0, 0}, []int32{2, 2}); err != nil || n != 0 {
		t.Fatalf("re-inserting existing edge applied %d (err %v), want 0", n, err)
	}
	if d.Snapshot().NumEdges() != s.NumEdges() {
		t.Fatal("failed AddEdges applied a prefix")
	}
	if d.Version() != 3 {
		t.Fatalf("rejected/no-op AddEdges bumped version to %d", d.Version())
	}
}

func TestDynamicCompaction(t *testing.T) {
	g := mustCSR(t, 4, []int32{0, 1}, []int32{1, 2})
	d, err := NewDynamic(g, DynamicOptions{CompactThreshold: 4})
	if err != nil {
		t.Fatal(err)
	}
	if n, err := d.AddEdges([]int32{0, 2, 3, 3}, []int32{3, 3, 0, 1}); err != nil || n != 4 {
		t.Fatalf("applied %d, err %v", n, err)
	}
	before := d.Snapshot()
	if d.Compactions() != 1 {
		t.Fatalf("compactions %d, want 1 (threshold crossed)", d.Compactions())
	}
	if before.overlay != nil {
		t.Fatal("freshly compacted snapshot still carries an overlay")
	}
	if before.Version() != 1 {
		t.Fatalf("compaction changed the version: %d", before.Version())
	}
	want := [][]int32{{1, 3}, {2}, {3}, {0, 1}}
	if got := adjSets(before); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-compaction adjacency %v, want %v", got, want)
	}
	if err := before.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := before.base.Validate(); err != nil {
		t.Fatalf("compacted base CSR invalid: %v", err)
	}
}

func TestSnapshotCSRMaterialization(t *testing.T) {
	g := mustCSR(t, 3, []int32{0, 1}, []int32{1, 2})
	d, err := NewDynamic(g, DynamicOptions{CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddEdges([]int32{2}, []int32{0}); err != nil {
		t.Fatal(err)
	}
	s := d.Snapshot()
	c := s.CSR()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(adjSets(c), adjSets(s)) {
		t.Fatal("materialized CSR differs from snapshot")
	}
}

// TestDynamicRoundTripProperty is the satellite property test: random edge
// lists round-tripped through FromEdgeList → Dynamic deltas → Snapshot →
// compaction must hold adjacency-(multi)set equality at every stage. An
// arbitrary split point divides each edge list into a base built by
// FromEdgeList and deltas applied through AddEdges (in arbitrary chunks),
// and the whole graph is compared against FromEdgeList over the full list.
func TestDynamicRoundTripProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := int32(2 + r.Intn(30))
		m := r.Intn(120)
		src := make([]int32, m)
		dst := make([]int32, m)
		for i := range src {
			src[i] = int32(r.Intn(int(n)))
			dst[i] = int32(r.Intn(int(n))) // self-loops and duplicates allowed
		}
		ref, err := FromEdgeList(n, src, dst)
		if err != nil {
			t.Logf("seed %d: FromEdgeList: %v", seed, err)
			return false
		}
		// Dynamic enforces set semantics, so the reference is the SET view
		// of the multigraph FromEdgeList builds (the "adjacency-set
		// equality" the round-trip is specified over).
		want := adjSetsUnique(ref)

		split := 0
		if m > 0 {
			split = r.Intn(m + 1)
		}
		base, err := FromEdgeList(n, src[:split], dst[:split])
		if err != nil {
			return false
		}
		// Random compaction threshold: -1 (never), tiny (often), or huge.
		thresholds := []int64{-1, 1, 3, 1 << 40}
		d, err := NewDynamic(base, DynamicOptions{CompactThreshold: thresholds[r.Intn(len(thresholds))]})
		if err != nil {
			return false
		}
		// Apply the remaining edges in random chunks, snapshotting between
		// some of them (exercising cache invalidation and mid-churn views).
		for lo := split; lo < m; {
			hi := lo + 1 + r.Intn(m-lo)
			if _, err := d.AddEdges(src[lo:hi], dst[lo:hi]); err != nil {
				return false
			}
			if r.Intn(2) == 0 {
				if err := d.Snapshot().Validate(); err != nil {
					t.Logf("seed %d: mid-churn snapshot invalid: %v", seed, err)
					return false
				}
			}
			lo = hi
		}
		s := d.Snapshot()
		if err := s.Validate(); err != nil {
			t.Logf("seed %d: final snapshot invalid: %v", seed, err)
			return false
		}
		if got := adjSetsUnique(s); !reflect.DeepEqual(got, want) {
			t.Logf("seed %d: snapshot adjacency %v, want %v", seed, got, want)
			return false
		}
		// Force a final compaction pass and re-check: representation change
		// must be invisible.
		d.mu.Lock()
		d.compactLocked()
		d.mu.Unlock()
		s2 := d.Snapshot()
		if got := adjSetsUnique(s2); !reflect.DeepEqual(got, want) {
			t.Logf("seed %d: post-compaction adjacency %v, want %v", seed, got, want)
			return false
		}
		if err := s2.Validate(); err != nil {
			t.Logf("seed %d: post-compaction snapshot invalid: %v", seed, err)
			return false
		}
		// And the materialized CSR round-trips too.
		if got := adjSetsUnique(s2.CSR()); !reflect.DeepEqual(got, want) {
			t.Logf("seed %d: materialized CSR diverges", seed)
			return false
		}
		// The delta suffix must never create duplicate adjacency entries:
		// the snapshot is already its own set wherever the base was one.
		base0, err := FromEdgeList(n, src[:split], dst[:split])
		if err != nil {
			return false
		}
		for v := int32(0); v < n; v++ {
			seen := map[int32]int{}
			for _, u := range base0.Neighbors(v) {
				seen[u]++
			}
			for _, u := range s2.Neighbors(v) {
				seen[u]--
			}
			for u, c := range seen {
				if c < -1 {
					t.Logf("seed %d: delta introduced duplicate edge (%d,%d)", seed, v, u)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestDynamicConcurrentMutators hammers AddEdges/AddNodes/Snapshot from
// many goroutines; run under -race this pins the mutator thread-safety
// contract, and the final snapshot must account for every applied edge.
func TestDynamicConcurrentMutators(t *testing.T) {
	g := mustCSR(t, 64, []int32{0, 1, 2}, []int32{1, 2, 3})
	d, err := NewDynamic(g, DynamicOptions{CompactThreshold: 64})
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers       = 4
		edgesPerChunk = 8
		chunks        = 25
	)
	var applied atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for c := 0; c < chunks; c++ {
				src := make([]int32, edgesPerChunk)
				dst := make([]int32, edgesPerChunk)
				for i := range src {
					src[i] = int32(r.Intn(64))
					dst[i] = int32(r.Intn(64))
				}
				a, err := d.AddEdges(src, dst)
				if err != nil {
					t.Error(err)
					return
				}
				applied.Add(int64(a))
				if c%5 == 0 {
					if _, err := d.AddNodes(1); err != nil {
						t.Error(err)
						return
					}
				}
				s := d.Snapshot()
				if err := s.Validate(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	s := d.Snapshot()
	wantEdges := g.NumEdges() + applied.Load()
	if s.NumEdges() != wantEdges {
		t.Fatalf("final snapshot has %d edges, want %d applied", s.NumEdges(), wantEdges)
	}
	if applied.Load() == 0 {
		t.Fatal("no edges applied at all")
	}
	wantNodes := int32(64 + writers*((chunks+4)/5))
	if s.NumNodes() != wantNodes {
		t.Fatalf("final snapshot has %d nodes, want %d", s.NumNodes(), wantNodes)
	}
	if d.Compactions() == 0 {
		t.Fatal("expected at least one compaction at threshold 64")
	}
}

func TestDynamicRejectsInvalidInput(t *testing.T) {
	g := mustCSR(t, 3, nil, nil)
	if _, err := NewDynamic(&CSR{N: 2, Ptr: []int64{0, 0}}, DynamicOptions{}); err == nil {
		t.Fatal("invalid base accepted")
	}
	d, err := NewDynamic(g, DynamicOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddNodes(0); err == nil {
		t.Fatal("AddNodes(0) accepted")
	}
	if _, err := d.AddEdges([]int32{0}, []int32{}); err == nil {
		t.Fatal("mismatched src/dst accepted")
	}
	if _, err := d.AddEdges([]int32{-1}, []int32{0}); err == nil {
		t.Fatal("negative endpoint accepted")
	}
	if n, err := d.AddEdges(nil, nil); err != nil || n != 0 {
		t.Fatalf("empty AddEdges should be a no-op, got %d, %v", n, err)
	}
	if d.Version() != 0 {
		t.Fatalf("rejected/no-op mutations bumped version to %d", d.Version())
	}
}
