package queue

import (
	"runtime"
	"time"
)

// spinBackoff implements a progressive backoff for spin loops: first busy
// spins, then scheduler yields, then short sleeps. This keeps latency low
// under contention without burning a core when the queue stays empty.
type spinBackoff struct {
	n int
}

func (b *spinBackoff) wait() {
	switch {
	case b.n < 8:
		// Busy spin: cheapest when the wait is a few instructions long.
	case b.n < 32:
		runtime.Gosched()
	default:
		time.Sleep(10 * time.Microsecond)
	}
	if b.n < 1<<20 {
		b.n++
	}
}
