package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"salient/internal/cache"
	"salient/internal/dataset"
	"salient/internal/fleet"
	"salient/internal/nn"
	"salient/internal/serve"
	"salient/internal/store"
	"salient/internal/train"
)

// FleetOpts configures the replicated-serving sweep.
type FleetOpts struct {
	Scale      float64       // arxiv stand-in scale
	Hidden     int           // model width
	Epochs     int           // warm-up training epochs
	Workers    int           // batching workers per replica
	MaxBatch   int           // micro-batch cap
	MaxDelay   time.Duration // micro-batch coalescing deadline
	Requests   int           // requests per phase (warm and measure)
	Rate       float64       // open-loop offered load, requests/second
	Skew       float64       // Zipf popularity skew of the request stream
	Replicas   int           // fleet size of the replicated rows (vs the 1-replica baseline)
	CacheFrac  float64       // TOTAL feature-cache rows as a fraction of N (split across replicas)
	EmbFrac    float64       // TOTAL embedding-cache rows as a fraction of N (split across replicas)
	ResultFrac float64       // result-cache rows as a fraction of N (the memo row only)
	LoadFactor float64       // bounded-load spill factor for hash rows (<=1: affinity absolute)

	// Overload-phase knobs: a tiny-queue fleet under closed-loop pressure
	// with mixed priorities and per-request deadlines.
	OverloadClients int           // closed-loop clients
	OverloadQueue   int           // per-replica queue capacity
	Deadline        time.Duration // per-request deadline in the overload phase

	Seed uint64
}

func (o *FleetOpts) defaults() {
	if o.Scale == 0 {
		o.Scale = 0.1
	}
	if o.Hidden == 0 {
		o.Hidden = 32
	}
	if o.Epochs == 0 {
		o.Epochs = 2
	}
	if o.Workers == 0 {
		o.Workers = 2
	}
	if o.MaxBatch == 0 {
		o.MaxBatch = 32
	}
	if o.MaxDelay == 0 {
		o.MaxDelay = 300 * time.Microsecond
	}
	if o.Requests == 0 {
		o.Requests = 1500
	}
	if o.Rate == 0 {
		o.Rate = 1500
	}
	if o.Skew == 0 {
		o.Skew = 1.1
	}
	if o.Replicas == 0 {
		o.Replicas = 3
	}
	if o.CacheFrac == 0 {
		o.CacheFrac = 0.2
	}
	if o.EmbFrac == 0 {
		o.EmbFrac = 0.3
	}
	if o.ResultFrac == 0 {
		o.ResultFrac = 0.1
	}
	if o.LoadFactor == 0 {
		o.LoadFactor = 1.25
	}
	if o.OverloadClients == 0 {
		o.OverloadClients = 64
	}
	if o.OverloadQueue == 0 {
		o.OverloadQueue = 16
	}
	if o.Deadline == 0 {
		o.Deadline = time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// FleetResult is one sweep row. Routing-phase rows compare fleet sizes and
// policies under identical Zipf Poisson load; the overload-phase row
// pressure-tests priority admission (its shed columns are per priority
// class, the routing columns zero).
type FleetResult struct {
	Phase    string `json:"phase"`    // "routing" or "overload"
	Replicas int    `json:"replicas"` //
	Routing  string `json:"routing"`  // hash | random | hash+memo | hash+pri

	P50Ms    float64 `json:"p50_ms"`    // fleet-boundary request latency
	P95Ms    float64 `json:"p95_ms"`    //
	P99Ms    float64 `json:"p99_ms"`    // the tentpole metric
	ShedFrac float64 `json:"shed_frac"` // refused / offered, all reasons

	VIPHit      float64 `json:"vip_hit"`      // fleet-wide feature-cache hit rate
	EmbHit      float64 `json:"emb_hit"`      // fleet-wide embedding-reuse hit rate
	CombinedHit float64 `json:"combined_hit"` // (feature + embedding hits) / lookups
	ResultHit   float64 `json:"result_hit"`   // versioned result-cache hit rate
	Balance     float64 `json:"balance"`      // max/mean of per-replica answered counts

	// Overload phase: per-priority-class outcomes.
	LowShedFrac  float64 `json:"low_shed_frac"`  // low-priority requests refused
	HighShedFrac float64 `json:"high_shed_frac"` // high-priority requests refused
	HighMissFrac float64 `json:"high_miss_frac"` // high-priority deadline misses
}

// fleetResults measures the sweep: one trained model replicated per
// config, every config warmed closed-loop on the same Zipf hot set (the
// popularity permutation is shared), VIP placements refreshed from the
// observed traffic, then measured under Poisson open-loop load. The TOTAL
// cache budget is fixed — split evenly across replicas — so fleet rows
// answer "does affinity keep partitioned caches hot", not "does more
// cache help". A final overload row floods a tiny-queue fleet with mixed
// priorities and deadlines.
func fleetResults(o FleetOpts) ([]FleetResult, error) {
	o.defaults()
	ds, err := dataset.Load(dataset.Arxiv, o.Scale)
	if err != nil {
		return nil, err
	}
	fanouts := []int{10, 5}
	tr, err := train.New(ds, train.Config{
		Arch: "SAGE", Hidden: o.Hidden, Layers: len(fanouts), Fanouts: fanouts,
		BatchSize: 128, Workers: 2, Seed: o.Seed,
	})
	if err != nil {
		return nil, err
	}
	if _, err := tr.Fit(o.Epochs); err != nil {
		return nil, err
	}
	build := func() (nn.Model, error) {
		return train.NewModel("SAGE", nn.ModelConfig{
			In: ds.FeatDim, Hidden: o.Hidden, Out: ds.NumClasses,
			Layers: len(fanouts), Seed: o.Seed,
		})
	}

	n := ds.G.N
	permSeed := o.Seed + 101
	warm := serve.ZipfNodes(n, o.Skew, permSeed, o.Seed+7, o.Requests)
	meas := serve.ZipfNodes(n, o.Skew, permSeed, o.Seed+8, o.Requests)
	resultRows := int(float64(n) * o.ResultFrac)

	type fcfg struct {
		replicas   int
		routing    fleet.Routing
		resultRows int
		label      string
	}
	configs := []fcfg{
		{1, fleet.RouteHash, 0, "hash"},
		{o.Replicas, fleet.RouteHash, 0, "hash"},
		{o.Replicas, fleet.RouteRandom, 0, "random"},
		{o.Replicas, fleet.RouteHash, resultRows, "hash+memo"},
	}
	var out []FleetResult
	for _, cfg := range configs {
		r, err := measureFleet(ds, tr, build, fanouts, cfg.replicas, cfg.routing, cfg.resultRows, cfg.label, warm, meas, o)
		if err != nil {
			return nil, fmt.Errorf("fleet %s/%d: %w", cfg.label, cfg.replicas, err)
		}
		out = append(out, r)
	}
	over, err := measureFleetOverload(ds, tr, build, fanouts, warm, o)
	if err != nil {
		return nil, fmt.Errorf("fleet overload: %w", err)
	}
	return append(out, over), nil
}

// fleetServeTemplate builds the per-replica server template with the total
// cache budget split across replicas.
func fleetServeTemplate(fanouts []int, replicas int, n int32, o FleetOpts) serve.Options {
	return serve.Options{
		Fanouts: fanouts, Workers: o.Workers, MaxBatch: o.MaxBatch,
		MaxDelay: o.MaxDelay, QueueCapacity: 1024, Seed: o.Seed + 13,
		CacheRows: int(float64(n) * o.CacheFrac / float64(replicas)), CachePolicy: cache.VIP,
		EmbCacheRows: int(float64(n) * o.EmbFrac / float64(replicas)), EmbStaleness: 1,
	}
}

// measureFleet runs one routing-phase configuration: warm closed-loop,
// refresh every replica's VIP placement from its own observed traffic,
// reset accounting, measure under Poisson open-loop load.
func measureFleet(ds *dataset.Dataset, tr *train.Trainer, build func() (nn.Model, error), fanouts []int, replicas int, routing fleet.Routing, resultRows int, label string, warm, meas []int32, o FleetOpts) (FleetResult, error) {
	models, err := fleet.Replicate(tr.Model, replicas, build)
	if err != nil {
		return FleetResult{}, err
	}
	f, err := fleet.New(ds, fleet.Options{
		Replicas: replicas, Serve: fleetServeTemplate(fanouts, replicas, ds.G.N, o),
		Routing: routing, LoadFactor: o.LoadFactor, ResultRows: resultRows,
		Seed: o.Seed + 17,
	}, models...)
	if err != nil {
		return FleetResult{}, err
	}
	defer f.Close()

	serve.DriveClosedLoop(f, warm, 8, len(warm))
	// Each replica's VIP placement plans from the slice of traffic routing
	// sent IT — under affinity that is its own hot key range, under random
	// a diluted copy of the global distribution.
	for i := 0; i < replicas; i++ {
		if c, ok := f.Replica(i).FeatureStore().(*store.Cached); ok {
			c.Refresh(ds.G)
		}
	}
	f.ResetStats()
	serve.DriveOpenLoopProcess(f, meas, o.Rate, len(meas), serve.ArrivalPoisson, o.Seed+5)
	st := f.Stats()

	r := FleetResult{
		Phase: "routing", Replicas: replicas, Routing: label,
		P50Ms: st.Latency.P50 * 1e3, P95Ms: st.Latency.P95 * 1e3, P99Ms: st.Latency.P99 * 1e3,
		CombinedHit: st.CombinedCacheHitRate(),
		ResultHit:   st.Result.HitRate(),
	}
	if st.CacheLookups > 0 {
		r.VIPHit = float64(st.CacheHits) / float64(st.CacheLookups)
	}
	if st.EmbLookups > 0 {
		r.EmbHit = float64(st.EmbHits) / float64(st.EmbLookups)
	}
	offered := int64(len(meas))
	if refused := st.Rejected + st.TotalSheds(); offered > 0 {
		r.ShedFrac = float64(refused) / float64(offered)
	}
	var max, total int64
	for _, c := range st.Routed {
		total += c
		if c > max {
			max = c
		}
	}
	if total > 0 {
		r.Balance = float64(max) * float64(len(st.Routed)) / float64(total)
	}
	return r, nil
}

// measureFleetOverload floods a tiny-queue fleet with closed-loop mixed
// -priority deadline-carrying traffic: every 4th request is high priority,
// the rest low. The claim under test: admission sheds the low class first,
// and the high class keeps meeting its deadline until true saturation.
func measureFleetOverload(ds *dataset.Dataset, tr *train.Trainer, build func() (nn.Model, error), fanouts []int, stream []int32, o FleetOpts) (FleetResult, error) {
	models, err := fleet.Replicate(tr.Model, o.Replicas, build)
	if err != nil {
		return FleetResult{}, err
	}
	tmpl := fleetServeTemplate(fanouts, o.Replicas, ds.G.N, o)
	tmpl.QueueCapacity = o.OverloadQueue
	f, err := fleet.New(ds, fleet.Options{
		Replicas: o.Replicas, Serve: tmpl, Routing: fleet.RouteHash,
		LoadFactor: o.LoadFactor, PriorityLevels: 2, Seed: o.Seed + 17,
	}, models...)
	if err != nil {
		return FleetResult{}, err
	}
	defer f.Close()

	// Warm without QoS so service-time estimates are live, then measure.
	serve.DriveClosedLoop(f, stream, 4, len(stream)/2)
	f.ResetStats()

	var mu sync.Mutex
	var lowOff, lowShed, highOff, highShed, highMiss int64
	var wg sync.WaitGroup
	for c := 0; c < o.OverloadClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < len(stream); i += o.OverloadClients {
				pri := uint8(0)
				if i%4 == 0 {
					pri = 1
				}
				_, err := f.PredictReq(serve.Request{
					Node: stream[i], Priority: pri,
					Deadline: time.Now().Add(o.Deadline),
				})
				mu.Lock()
				if pri == 1 {
					highOff++
					switch {
					case errors.Is(err, serve.ErrDeadline) || errors.Is(err, fleet.ErrShedDeadline):
						highMiss++
					case err != nil:
						highShed++
					}
				} else {
					lowOff++
					if err != nil {
						lowShed++
					}
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	st := f.Stats()

	r := FleetResult{
		Phase: "overload", Replicas: o.Replicas, Routing: "hash+pri",
		P50Ms: st.Latency.P50 * 1e3, P95Ms: st.Latency.P95 * 1e3, P99Ms: st.Latency.P99 * 1e3,
	}
	if offered := lowOff + highOff; offered > 0 {
		r.ShedFrac = float64(lowShed+highShed+highMiss) / float64(offered)
	}
	if lowOff > 0 {
		r.LowShedFrac = float64(lowShed) / float64(lowOff)
	}
	if highOff > 0 {
		r.HighShedFrac = float64(highShed) / float64(highOff)
		r.HighMissFrac = float64(highMiss) / float64(highOff)
	}
	return r, nil
}

// FleetSweep is the replicated-serving study: consistent-hash affinity
// versus random routing at a fixed total cache budget (does affinity keep
// partitioned VIP/embedding caches hot?), the versioned result cache's
// contribution, and priority/deadline admission under overload.
func FleetSweep(o FleetOpts) (Table, error) {
	o.defaults()
	t := Table{
		ID:    "fleet",
		Title: "Replicated serving fleet: affinity routing, admission, result memo (§5/§8 extension)",
		Header: []string{"Phase", "N", "Routing", "p50", "p95", "p99", "Shed",
			"VIPHit", "EmbHit", "Combined", "Memo", "Balance", "LowShed", "HiShed", "HiMiss"},
	}
	results, err := fleetResults(o)
	if err != nil {
		return t, err
	}
	for _, r := range results {
		t.AddRow(
			r.Phase, fmt.Sprintf("%d", r.Replicas), r.Routing,
			fmt.Sprintf("%.2fms", r.P50Ms), fmt.Sprintf("%.2fms", r.P95Ms), fmt.Sprintf("%.2fms", r.P99Ms),
			pct(r.ShedFrac), pct(r.VIPHit), pct(r.EmbHit), pct(r.CombinedHit), pct(r.ResultHit),
			fmt.Sprintf("%.2fx", r.Balance),
			pct(r.LowShedFrac), pct(r.HighShedFrac), pct(r.HighMissFrac),
		)
	}
	t.AddNote("Zipf skew %.1f, Poisson open loop at %.0f rps, %d requests/phase, arxiv scale %.2f; total cache budget fixed (feature %.0f%%, embedding %.0f%% of N) and split across replicas",
		o.Skew, o.Rate, o.Requests, o.Scale, 100*o.CacheFrac, 100*o.EmbFrac)
	t.AddNote("overload row: %d closed-loop clients, queue %d/replica, %v deadlines, every 4th request high priority",
		o.OverloadClients, o.OverloadQueue, o.Deadline)
	return t, nil
}

// FleetSweepJSON writes the sweep's raw rows as JSON (the CI bench
// artifact).
func FleetSweepJSON(w io.Writer, o FleetOpts) error {
	results, err := fleetResults(o)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}
