package sampler

import (
	"fmt"

	"salient/internal/graph"
	"salient/internal/mfg"
	"salient/internal/rng"
)

// SeedError reports an invalid seed set: a seed node out of graph range or a
// duplicate within the batch. SampleInto returns it (so batch-preparation
// executors can surface it through Batch.Err instead of crashing a worker
// goroutine); Sample keeps the historical panic contract for the same
// conditions.
type SeedError struct {
	Seed  int32 // offending global node ID
	Index int   // position within the seed slice
	N     int32 // graph node count
	Dup   bool  // true: duplicate seed; false: out of range
}

func (e *SeedError) Error() string {
	if e.Dup {
		return fmt.Sprintf("sampler: duplicate seed %d (position %d)", e.Seed, e.Index)
	}
	return fmt.Sprintf("sampler: seed %d (position %d) out of range [0,%d)", e.Seed, e.Index, e.N)
}

// Sampler draws multi-hop sampled neighborhoods (MFGs) from a graph.
//
// A Sampler is not safe for concurrent use; SALIENT's shared-memory batch
// preparation gives each worker goroutine its own Sampler (paper §4.2),
// which is also what makes the pooled-reuse configurations safe.
//
// With Reuse == ReusePooledAll the returned MFG aliases internal buffers and
// is invalidated by the next Sample call on the same Sampler. This mirrors
// SALIENT's recycled batch slots; callers that need longer-lived batches use
// one Sampler per in-flight slot, a different reuse policy, or — the
// production path — SampleInto, which writes into an MFG the caller owns
// (the prep executor samples straight into recycled batch arenas this way).
type Sampler struct {
	// G is the topology sampled against: a static CSR or an immutable
	// graph.Snapshot. Swap it between batches with Retarget, never directly.
	G       graph.Topology
	Fanouts []int // Fanouts[0] feeds GNN layer 1 (the outermost hop)

	cfg    Config
	mapper localMapper
	picker neighborPicker

	// Pooled buffers (ReusePooledAll).
	nodeIDs  []int32
	dstPtrs  [][]int32
	srcBufs  [][]int32
	phaseBuf []int32 // two-phase sampled-globals buffer
	phaseCnt []int32 // two-phase per-destination counts

	// SampleInto hot-loop state. The emit closures are bound once at
	// construction and read/write these fields, so the per-destination inner
	// loops create no closures and allocate nothing in steady state.
	cur struct {
		nodeIDs []int32 // growing local->global table of the in-progress MFG
		src     []int32 // growing source-local edge list of the current block
		buf     []int32 // two-phase sampled-globals scratch
	}
	emitMap func(int32) // fused build: map + record one sampled neighbor
	emitBuf func(int32) // two-phase build: buffer one sampled global ID

	// truncate, when set, is consulted by SampleInto once per level-1
	// frontier destination (the hop that fills Blocks[0]), in destination
	// order: returning true skips neighbor expansion below that node,
	// leaving it an empty adjacency range. See SetTruncate.
	truncate func(int32) bool
}

// New returns a sampler over topology g (a *graph.CSR or a pinned
// *graph.Snapshot) with the given per-layer fanouts and design
// configuration.
func New(g graph.Topology, fanouts []int, cfg Config) *Sampler {
	if len(fanouts) == 0 {
		panic("sampler: empty fanouts") //lint:allow panicdiscipline constructor contract: empty fanouts is a programmer error caught at wiring time
	}
	for _, f := range fanouts {
		if f < 1 {
			panic(fmt.Sprintf("sampler: fanout %d < 1", f)) //lint:allow panicdiscipline constructor contract: non-positive fanouts are a programmer error caught at wiring time
		}
	}
	s := &Sampler{
		G:       g,
		Fanouts: append([]int(nil), fanouts...),
		cfg:     cfg,
		dstPtrs: make([][]int32, len(fanouts)),
		srcBufs: make([][]int32, len(fanouts)),
	}
	s.picker = newPicker(cfg.Dedup, cfg.Reuse)
	if cfg.Reuse != ReuseFresh {
		s.mapper = s.newMapper()
	}
	s.emitMap = func(g int32) {
		l := s.mapper.GetOrAssign(g)
		if int(l) == len(s.cur.nodeIDs) {
			s.cur.nodeIDs = append(s.cur.nodeIDs, g)
		}
		s.cur.src = append(s.cur.src, l)
	}
	s.emitBuf = func(g int32) { s.cur.buf = append(s.cur.buf, g) }
	return s
}

// Config returns the design-space configuration of this sampler.
func (s *Sampler) Config() Config { return s.cfg }

// SetTruncate installs (or, with nil, removes) the frontier truncation
// predicate — the embedding-reuse hook. SampleInto consults it exactly once
// per destination of the LAST sampling hop (the one that fills Blocks[0],
// whose destinations are the layer-1 frontier), in destination order; a
// true return skips sampling below that node, so its hop-2 neighborhood is
// never drawn, mapped, or gathered. The predicate observes the same
// destination sequence the block records, which lets callers map the i-th
// consultation of a request straight to frontier position i.
//
// A nil predicate — or one that always returns false — leaves the RNG
// consumption and output bit-identical to an un-hooked sampler: the
// predicate runs before any randomness for that destination is drawn.
// Sample (the pooled research path) ignores the hook; serving and
// inference run through SampleInto.
func (s *Sampler) SetTruncate(f func(int32) bool) { s.truncate = f }

// Retarget points the sampler at a new topology — how long-lived samplers
// (the prep executors' per-worker samplers, the serving workers') follow a
// dynamic graph across snapshots without losing their warm scratch buffers.
// The direct ID map is the only piece of state sized by the graph; it is
// regrown only when the node count expands past its table. Retargeting to
// the topology already in place is a no-op, and calling it mid-Sample is a
// caller error (samplers are single-goroutine).
func (s *Sampler) Retarget(g graph.Topology) {
	if g == s.G {
		return
	}
	s.G = g
	if d, ok := s.mapper.(*directMapper); ok && g.NumNodes() > d.n {
		s.mapper = newDirectMapper(g.NumNodes())
	}
}

func (s *Sampler) newMapper() localMapper {
	switch s.cfg.IDMap {
	case IDMapStd:
		return &stdMapper{}
	case IDMapFlat:
		return &flatMapper{}
	case IDMapFlatPre:
		return &flatMapper{presize: true}
	case IDMapDirect:
		return newDirectMapper(s.G.NumNodes())
	}
	panic("sampler: unknown idmap kind") //lint:allow panicdiscipline config enum exhaustiveness: Config.Validate rejects unknown kinds upstream
}

// expectedNodes estimates the expanded-neighborhood size for pre-sizing:
// batch × Π(fanout+1), capped at the graph size.
func (s *Sampler) expectedNodes(batch int) int {
	est := batch
	for _, f := range s.Fanouts {
		if est > int(s.G.NumNodes()) {
			break
		}
		est *= f + 1
	}
	if est > int(s.G.NumNodes()) {
		est = int(s.G.NumNodes())
	}
	return est
}

// Sample draws the MFG for the given seed nodes. Seeds must be distinct and
// in range: violating either is a programming error and panics (callers that
// take seeds from untrusted input use SampleInto, which returns a *SeedError
// instead). Randomness comes from r, so identical (seed set, RNG state)
// pairs reproduce identical MFGs.
func (s *Sampler) Sample(r *rng.Rand, seeds []int32) *mfg.MFG {
	L := len(s.Fanouts)
	expected := s.expectedNodes(len(seeds))

	mapper := s.mapper
	if s.cfg.Reuse == ReuseFresh || mapper == nil {
		mapper = s.newMapper()
	}
	mapper.Reset(expected)

	var nodeIDs []int32
	if s.cfg.Reuse == ReusePooledAll && s.nodeIDs != nil {
		nodeIDs = s.nodeIDs[:0]
	} else {
		nodeIDs = make([]int32, 0, expected)
	}

	for _, v := range seeds {
		if v < 0 || v >= s.G.NumNodes() {
			panic(fmt.Sprintf("sampler: seed %d out of range", v)) //lint:allow panicdiscipline documented Sample contract: seeds must be in-range and unique
		}
		l := mapper.GetOrAssign(v)
		if int(l) != len(nodeIDs) {
			panic(fmt.Sprintf("sampler: duplicate seed %d", v)) //lint:allow panicdiscipline documented Sample contract: seeds must be in-range and unique
		}
		nodeIDs = append(nodeIDs, v)
	}

	blocks := make([]mfg.Block, L)
	frontier := int32(len(seeds))

	for hop := 0; hop < L; hop++ {
		blockIdx := L - 1 - hop       // innermost hop fills the last block
		fanout := s.Fanouts[blockIdx] // so hop 0 uses Fanouts[L-1]
		numDst := frontier

		dstPtr := s.grabDstPtr(hop, int(numDst)+1)
		src := s.grabSrc(hop)

		if s.cfg.Build == BuildFused {
			for v := int32(0); v < numDst; v++ {
				dstPtr[v] = int32(len(src))
				ns := s.G.Neighbors(nodeIDs[v])
				s.picker.Pick(r, ns, fanout, func(g int32) {
					l := mapper.GetOrAssign(g)
					if int(l) == len(nodeIDs) {
						nodeIDs = append(nodeIDs, g)
					}
					src = append(src, l)
				})
			}
			dstPtr[numDst] = int32(len(src))
		} else {
			// Phase 1: sample global IDs into a flat buffer.
			buf := s.phaseBuf[:0]
			cnt := s.grabPhaseCnt(int(numDst))
			for v := int32(0); v < numDst; v++ {
				before := len(buf)
				ns := s.G.Neighbors(nodeIDs[v])
				s.picker.Pick(r, ns, fanout, func(g int32) {
					buf = append(buf, g)
				})
				cnt[v] = int32(len(buf) - before)
			}
			// Phase 2: map globals to locals and build the block.
			pos := 0
			for v := int32(0); v < numDst; v++ {
				dstPtr[v] = int32(len(src))
				for e := int32(0); e < cnt[v]; e++ {
					g := buf[pos]
					pos++
					l := mapper.GetOrAssign(g)
					if int(l) == len(nodeIDs) {
						nodeIDs = append(nodeIDs, g)
					}
					src = append(src, l)
				}
			}
			dstPtr[numDst] = int32(len(src))
			if s.cfg.Reuse == ReusePooledAll {
				s.phaseBuf = buf
			}
		}

		frontier = mapper.Len()
		blocks[blockIdx] = mfg.Block{
			DstPtr: dstPtr,
			Src:    src,
			NumDst: numDst,
			NumSrc: frontier,
		}
		if s.cfg.Reuse == ReusePooledAll {
			s.dstPtrs[hop] = dstPtr
			s.srcBufs[hop] = src
		}
	}

	if s.cfg.Reuse == ReusePooledAll {
		s.nodeIDs = nodeIDs
	}
	if s.cfg.Reuse != ReuseFresh {
		s.mapper = mapper
	}
	return &mfg.MFG{Blocks: blocks, NodeIDs: nodeIDs, Batch: int32(len(seeds))}
}

// SampleInto draws the MFG for the given seed nodes into out, reusing out's
// buffers (Blocks, DstPtr/Src, NodeIDs) and growing them only when this
// batch's neighborhood exceeds every previous occupant's. It draws the
// identical RNG sequence as Sample, so the resulting MFG is bit-identical to
// what Sample returns for the same (config, seed set, RNG state) — only the
// ownership differs: out and everything it references belong to the caller,
// typically one slot of a recycled batch arena (internal/prep), and stay
// valid until the caller reuses them.
//
// Unlike Sample, seed validation failures (out-of-range or duplicate seeds)
// come back as a *SeedError — out-of-range before any sampling state is
// touched, duplicates during the seed-prefix insertion — rather than a panic
// deep in the hot loop, so executors can surface them through Batch.Err. On
// error out's contents are unspecified but its buffers remain reusable.
//
// The Config's Reuse axis governs only Sample's buffer policy (the Figure 2
// design sweep); SampleInto always pools its internal scratch (ID map,
// dedup structures, phase buffers) regardless, since the output buffers are
// the caller's.
//
//salient:noalloc
func (s *Sampler) SampleInto(r *rng.Rand, seeds []int32, out *mfg.MFG) error {
	L := len(s.Fanouts)
	expected := s.expectedNodes(len(seeds))

	for i, v := range seeds {
		if v < 0 || v >= s.G.NumNodes() {
			return &SeedError{Seed: v, Index: i, N: s.G.NumNodes()}
		}
	}

	if s.mapper == nil {
		s.mapper = s.newMapper() // ReuseFresh config: pool it here anyway
	}
	s.mapper.Reset(expected)

	nodeIDs := out.NodeIDs[:0]
	if cap(nodeIDs) < expected {
		nodeIDs = make([]int32, 0, expected)
	}
	for i, v := range seeds {
		l := s.mapper.GetOrAssign(v)
		if int(l) != len(nodeIDs) {
			return &SeedError{Seed: v, Index: i, N: s.G.NumNodes(), Dup: true}
		}
		nodeIDs = append(nodeIDs, v)
	}

	if cap(out.Blocks) < L {
		out.Blocks = make([]mfg.Block, L)
	}
	out.Blocks = out.Blocks[:L]

	s.cur.nodeIDs = nodeIDs
	frontier := int32(len(seeds))

	for hop := 0; hop < L; hop++ {
		blockIdx := L - 1 - hop       // innermost hop fills the last block
		fanout := s.Fanouts[blockIdx] // so hop 0 uses Fanouts[L-1]
		numDst := frontier
		blk := &out.Blocks[blockIdx]

		// The truncation hook applies only to the hop that fills Blocks[0]
		// (its destinations are the layer-1 frontier); a local nil predicate
		// keeps the other hops' inner loops branch-free.
		trunc := s.truncate
		if blockIdx != 0 {
			trunc = nil
		}

		dstPtr := blk.DstPtr
		if cap(dstPtr) < int(numDst)+1 {
			dstPtr = make([]int32, int(numDst)+1)
		}
		dstPtr = dstPtr[:int(numDst)+1]
		s.cur.src = blk.Src[:0]

		if s.cfg.Build == BuildFused {
			for v := int32(0); v < numDst; v++ {
				dstPtr[v] = int32(len(s.cur.src))
				if trunc != nil && trunc(s.cur.nodeIDs[v]) {
					continue // cached embedding: no expansion below this node
				}
				ns := s.G.Neighbors(s.cur.nodeIDs[v])
				s.picker.Pick(r, ns, fanout, s.emitMap)
			}
			dstPtr[numDst] = int32(len(s.cur.src))
		} else {
			// Phase 1: sample global IDs into a flat buffer.
			s.cur.buf = s.phaseBuf[:0]
			cnt := s.grabCnt(int(numDst))
			for v := int32(0); v < numDst; v++ {
				before := len(s.cur.buf)
				if trunc == nil || !trunc(s.cur.nodeIDs[v]) {
					ns := s.G.Neighbors(s.cur.nodeIDs[v])
					s.picker.Pick(r, ns, fanout, s.emitBuf)
				}
				cnt[v] = int32(len(s.cur.buf) - before)
			}
			// Phase 2: map globals to locals and build the block.
			pos := 0
			for v := int32(0); v < numDst; v++ {
				dstPtr[v] = int32(len(s.cur.src))
				for e := int32(0); e < cnt[v]; e++ {
					g := s.cur.buf[pos]
					pos++
					l := s.mapper.GetOrAssign(g)
					if int(l) == len(s.cur.nodeIDs) {
						s.cur.nodeIDs = append(s.cur.nodeIDs, g)
					}
					s.cur.src = append(s.cur.src, l)
				}
			}
			dstPtr[numDst] = int32(len(s.cur.src))
			s.phaseBuf = s.cur.buf
		}

		frontier = s.mapper.Len()
		*blk = mfg.Block{
			DstPtr: dstPtr,
			Src:    s.cur.src,
			NumDst: numDst,
			NumSrc: frontier,
		}
	}

	out.NodeIDs = s.cur.nodeIDs
	out.Batch = int32(len(seeds))
	s.cur.nodeIDs, s.cur.src, s.cur.buf = nil, nil, nil
	return nil
}

// grabCnt returns the always-pooled per-destination count scratch used by
// SampleInto's two-phase build.
//
//salient:noalloc
func (s *Sampler) grabCnt(n int) []int32 {
	if cap(s.phaseCnt) < n {
		s.phaseCnt = make([]int32, n)
	}
	s.phaseCnt = s.phaseCnt[:n]
	return s.phaseCnt
}

func (s *Sampler) grabDstPtr(hop, n int) []int32 {
	if s.cfg.Reuse == ReusePooledAll && cap(s.dstPtrs[hop]) >= n {
		return s.dstPtrs[hop][:n]
	}
	return make([]int32, n)
}

func (s *Sampler) grabSrc(hop int) []int32 {
	if s.cfg.Reuse == ReusePooledAll && s.srcBufs[hop] != nil {
		return s.srcBufs[hop][:0]
	}
	return make([]int32, 0, 256)
}

func (s *Sampler) grabPhaseCnt(n int) []int32 {
	if s.cfg.Reuse == ReusePooledAll && cap(s.phaseCnt) >= n {
		s.phaseCnt = s.phaseCnt[:n]
		return s.phaseCnt
	}
	s.phaseCnt = make([]int32, n)
	return s.phaseCnt
}
