package fleet

import (
	"errors"
	"fmt"
	"time"
)

// ShedReason classifies why admission refused a request — the taxonomy the
// fleet's Stats expose so an operator can tell "clients ask for the
// impossible" (deadline) from "we are overloaded" (priority, capacity).
type ShedReason int

const (
	// ShedDeadline: the request's deadline is closer than the target
	// replica's live p95 service time — it provably (to p95 confidence)
	// cannot be met, so executing it would only delay feasible work.
	ShedDeadline ShedReason = iota
	// ShedPriority: the replica's queue is deep enough that only
	// higher-priority traffic is still admitted (lowest priority sheds
	// first as occupancy climbs).
	ShedPriority
	// ShedCapacity: the replica's admission ring was full — the bare
	// server's ErrSaturated, attributed.
	ShedCapacity
	numShedReasons int = iota
)

func (r ShedReason) String() string {
	switch r {
	case ShedDeadline:
		return "deadline"
	case ShedPriority:
		return "priority"
	case ShedCapacity:
		return "capacity"
	}
	return fmt.Sprintf("reason(%d)", int(r))
}

// Sentinel causes for errors.Is matching, one per ShedReason.
var (
	ErrShedDeadline = errors.New("fleet: shed, deadline infeasible")
	ErrShedPriority = errors.New("fleet: shed, priority below admission threshold")
	ErrShedCapacity = errors.New("fleet: shed, replica saturated")
)

func (r ShedReason) sentinel() error {
	switch r {
	case ShedDeadline:
		return ErrShedDeadline
	case ShedPriority:
		return ErrShedPriority
	}
	return ErrShedCapacity
}

// ShedError is a refused request with its full admission context: which
// replica refused (or -1 when no replica was eligible), why, and — for
// deadline sheds — how the deadline compared to the service-time estimate
// that condemned it.
type ShedError struct {
	// Reason classifies the shed.
	Reason ShedReason
	// Replica is the refusing replica, or -1 when the decision was
	// fleet-global (no eligible replica).
	Replica int
	// Remaining is time-to-deadline at the decision instant and Estimate
	// the replica's p95 service time, both zero for non-deadline sheds.
	Remaining time.Duration
	Estimate  time.Duration
	// Err is the underlying cause (the reason's sentinel, or the
	// replica's own error for capacity sheds).
	Err error
}

func (e *ShedError) Error() string {
	if e.Reason == ShedDeadline {
		return fmt.Sprintf("fleet: replica %d shed (%s): %v remaining < %v p95 estimate",
			e.Replica, e.Reason, e.Remaining, e.Estimate)
	}
	return fmt.Sprintf("fleet: replica %d shed (%s): %v", e.Replica, e.Reason, e.Err)
}

// Unwrap exposes the cause chain to errors.Is (a capacity shed wrapping
// the replica's ErrSaturated matches that too).
func (e *ShedError) Unwrap() error { return e.Err }

// Is matches every ShedError against its reason's sentinel even when Err
// holds the replica's own error instead (capacity sheds wrap ErrSaturated,
// yet errors.Is(err, ErrShedCapacity) still holds).
func (e *ShedError) Is(target error) bool { return target == e.Reason.sentinel() }

func shedErr(reason ShedReason, replica int) *ShedError {
	return &ShedError{Reason: reason, Replica: replica, Err: reason.sentinel()}
}
