package event

import (
	"math"
	"testing"
)

func TestRecorderEmpty(t *testing.T) {
	var r Recorder
	s := r.Summarize()
	if s.Count != 0 || s.Mean != 0 || s.P50 != 0 || s.P99 != 0 || s.Max != 0 {
		t.Fatalf("empty summary not zero: %+v", s)
	}
}

func TestRecorderQuantiles(t *testing.T) {
	var r Recorder
	// 1..100 in scrambled order; nearest-rank quantiles are exact.
	for i := 0; i < 100; i++ {
		r.Add(float64((i*37)%100 + 1))
	}
	if got := r.Quantile(0.50); got != 50 {
		t.Errorf("p50 = %v, want 50", got)
	}
	if got := r.Quantile(0.95); got != 95 {
		t.Errorf("p95 = %v, want 95", got)
	}
	if got := r.Quantile(0.99); got != 99 {
		t.Errorf("p99 = %v, want 99", got)
	}
	if got := r.Quantile(1.0); got != 100 {
		t.Errorf("p100 = %v, want 100", got)
	}
	if got := r.Quantile(0); got != 1 {
		t.Errorf("p0 = %v, want 1", got)
	}
	if got := r.Max(); got != 100 {
		t.Errorf("max = %v, want 100", got)
	}
	if got := r.Mean(); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("mean = %v, want 50.5", got)
	}
}

func TestRecorderInterleavedAddAndQuantile(t *testing.T) {
	// Adding after a quantile query must re-sort, not corrupt.
	var r Recorder
	r.Add(3)
	r.Add(1)
	if got := r.Quantile(0.5); got != 1 {
		t.Fatalf("p50 of {1,3} = %v, want 1", got)
	}
	r.Add(2)
	if got := r.Quantile(0.5); got != 2 {
		t.Fatalf("p50 of {1,2,3} = %v, want 2", got)
	}
	if r.Count() != 3 {
		t.Fatalf("count = %d, want 3", r.Count())
	}
}
