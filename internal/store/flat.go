package store

import (
	"fmt"
	"sync"

	"salient/internal/dataset"
	"salient/internal/half"
	"salient/internal/mfg"
	"salient/internal/slicing"
)

// Flat is the single-array FeatureStore: rows live in one contiguous
// row-major matrix at the store's storage precision (the seed layout aliases
// dataset.Dataset's FeatHalf at fp16), and every gathered row is charged as
// transferred at that precision's row width.
//
// Flat is the store that grows with a dynamic graph: AppendRows extends the
// matrix (copy-on-grow, never mutating the dataset's arrays) so nodes added
// through graph.Dynamic get feature rows without a rebuild.
type Flat struct {
	dim  int
	prec half.Precision

	// srcMu orders appends against concurrent gathers: Gather reads src/n
	// under the read lock for the duration of the row copies, AppendRows
	// swaps in the grown arrays under the write lock. The arrays themselves
	// are append-only, so readers never observe a partial row.
	srcMu  sync.RWMutex
	src    slicing.Source
	n      int
	mat    *rowMat
	labels []int32

	mu    sync.Mutex
	stats Stats
}

// NewFlat builds the flat store over ds's host feature matrix and labels at
// the seed precision (fp16). The dataset's arrays are aliased until the
// first AppendRows, which copies on grow — the dataset itself is never
// mutated.
func NewFlat(ds *dataset.Dataset) *Flat { return NewFlatPrec(ds, half.FP16) }

// NewFlatPrec builds the flat store at an explicit storage precision. fp16
// aliases the dataset's FeatHalf zero-copy; fp32 and int8 re-encode every
// row once at build time from the same fp16 master values (so all
// precisions of one dataset derive from identical inputs).
func NewFlatPrec(ds *dataset.Dataset, prec half.Precision) *Flat {
	mat := rowMatFromHalf(ds.FeatHalf, ds.FeatDim, int(ds.G.N), prec)
	return &Flat{
		dim:    ds.FeatDim,
		prec:   prec,
		src:    mat.source(ds.Labels),
		n:      int(ds.G.N),
		mat:    mat,
		labels: ds.Labels,
	}
}

// Dim returns the feature dimensionality.
func (f *Flat) Dim() int { return f.dim }

// Precision returns the storage precision rows are held (and moved) at.
func (f *Flat) Precision() half.Precision { return f.prec }

// NumNodes returns the number of feature rows held.
func (f *Flat) NumNodes() int {
	f.srcMu.RLock()
	defer f.srcMu.RUnlock()
	return f.n
}

// AppendRows implements Appendable: it appends len(labels) rows (feat is
// row-major float32, len(labels)×Dim, encoded to the store's storage
// precision like every other row) and returns the first new row ID.
// Concurrent Gathers keep reading the pre-append arrays until the swap
// completes.
func (f *Flat) AppendRows(feat []float32, labels []int32) (int32, error) {
	if len(labels) == 0 {
		return 0, fmt.Errorf("store: AppendRows with no rows")
	}
	if len(feat) != len(labels)*f.dim {
		return 0, fmt.Errorf("store: AppendRows feat length %d, want %d rows × dim %d = %d",
			len(feat), len(labels), f.dim, len(labels)*f.dim)
	}
	f.srcMu.Lock()
	defer f.srcMu.Unlock()
	first := int32(f.n)
	// append copies on the first grow (dataset arrays have no spare
	// capacity), so the dataset's own FeatHalf/Labels are never written.
	f.mat.appendRows(feat)
	f.labels = append(f.labels, labels...)
	f.n += len(labels)
	f.src = f.mat.source(f.labels)
	return first, nil
}

// Gather stages the batch with the SALIENT serial kernel.
//
//salient:noalloc
func (f *Flat) Gather(dst *slicing.Pinned, nodeIDs []int32, batch int) error {
	f.srcMu.RLock()
	src, n := f.src, f.n
	f.srcMu.RUnlock()
	if err := checkIDs(nodeIDs, n); err != nil {
		return err
	}
	if err := slicing.Slice(dst, src, nodeIDs, batch); err != nil {
		return err
	}
	f.account(len(nodeIDs))
	return nil
}

// GatherStriped stages the batch with the statically striped parallel
// kernel, for the PyG executor's DataLoader model.
func (f *Flat) GatherStriped(dst *slicing.Pinned, nodeIDs []int32, batch, nWorkers int, run func(stripes []func())) error {
	f.srcMu.RLock()
	src, n := f.src, f.n
	f.srcMu.RUnlock()
	if err := checkIDs(nodeIDs, n); err != nil {
		return err
	}
	if err := slicing.SliceStriped(dst, src, nodeIDs, batch, nWorkers, run); err != nil {
		return err
	}
	f.account(len(nodeIDs))
	return nil
}

// GatherAggregate implements FusedGatherer: one pass over the stored rows,
// widening and accumulating the first layer's mean/sum aggregate directly,
// with no staged tensor. Each row is still read from host memory once, so
// the transfer accounting matches Gather; the savings show up in the batch
// payload (2×NumDst×dim float32 versus NumSrc×dim storage-width scalars).
//
//salient:noalloc
func (f *Flat) GatherAggregate(dst *slicing.Fused, nodeIDs []int32, blk *mfg.Block, batch int, op slicing.AggOp) error {
	f.srcMu.RLock()
	src, n := f.src, f.n
	f.srcMu.RUnlock()
	if err := checkIDs(nodeIDs, n); err != nil {
		return err
	}
	if err := slicing.GatherAggregate(dst, src, nodeIDs, blk, batch, op); err != nil {
		return err
	}
	f.account(len(nodeIDs))
	return nil
}

func (f *Flat) account(rows int) {
	bytes := int64(rows) * f.prec.RowBytes(f.dim)
	f.mu.Lock()
	f.stats.Gathers++
	f.stats.Rows += int64(rows)
	f.stats.RowsMoved += int64(rows)
	f.stats.BytesMoved += bytes
	f.mu.Unlock()
}

// Stats returns the accumulated transfer accounting.
func (f *Flat) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// ResetStats clears the accounting.
func (f *Flat) ResetStats() {
	f.mu.Lock()
	f.stats = Stats{}
	f.mu.Unlock()
}

// checkIDs rejects out-of-range node IDs before any row is touched, turning
// what used to be an index panic deep in the gather into an error the
// executor API can propagate.
func checkIDs(nodeIDs []int32, n int) error {
	for _, id := range nodeIDs {
		if id < 0 || int(id) >= n {
			return fmt.Errorf("store: node %d out of range [0,%d)", id, n)
		}
	}
	return nil
}
