package fleet

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"salient/internal/dataset"
	"salient/internal/event"
	"salient/internal/graph"
	"salient/internal/nn"
	"salient/internal/serve"
)

// Routing selects how the router picks a replica for a request.
type Routing int

const (
	// RouteHash is consistent-hash affinity: node v always lands on the
	// ring replica owning hash(v) (spilling to successors only under the
	// bounded-load rule), so each replica's VIP feature cache and
	// historical-embedding cache see a stable slice of the key space and
	// stay hot on it. This is the default.
	RouteHash Routing = iota
	// RouteRandom scatters requests uniformly across replicas — the
	// affinity-free baseline the fleet bench compares against: every
	// replica's caches see the whole key space diluted N ways.
	RouteRandom
)

func (r Routing) String() string {
	if r == RouteRandom {
		return "random"
	}
	return "hash"
}

// ParseRouting maps a flag-style name onto a Routing: "hash" (or empty)
// and "random".
func ParseRouting(s string) (Routing, error) {
	switch s {
	case "", "hash":
		return RouteHash, nil
	case "random":
		return RouteRandom, nil
	}
	return 0, fmt.Errorf("fleet: unknown routing %q (want hash or random)", s)
}

// Options configures a Fleet.
type Options struct {
	// Replicas is the fleet size. Default 1 (a fleet of one is
	// bit-identical to the bare server it wraps).
	Replicas int
	// Serve is the per-replica server template: every replica is built
	// from this Options value with its own store and (under Dynamic) its
	// own graph. Serve.Store and Serve.Graph must be nil — per-replica
	// isolation is the fleet's job, shared backends would break it.
	Serve serve.Options
	// Routing selects the routing policy. Default RouteHash.
	Routing Routing
	// VNodes is the consistent-hash ring's virtual nodes per replica;
	// <= 0 selects DefaultVNodes.
	VNodes int
	// LoadFactor > 1 enables consistent hashing with bounded loads: a
	// request spills past its home replica to the next ring successor
	// whenever the home's in-flight count exceeds
	// ceil(LoadFactor * (totalInflight+1) / Replicas) — the classic
	// c-bound that caps hot-key pileups at a c× share of the load while
	// keeping all other keys on their home. <= 1 (default) disables
	// spilling: affinity is absolute.
	LoadFactor float64
	// PriorityLevels > 1 enables priority admission: request priority p
	// (clamped to PriorityLevels-1) is admitted at a replica only while
	// its queue occupancy is under (p+1)/PriorityLevels of capacity, so
	// as the queue fills the lowest priorities shed first and the top
	// priority retains the full queue. Default 1: no priority shedding,
	// matching the bare server.
	PriorityLevels int
	// MaxSkew bounds how many graph versions a replica may lag the fleet
	// watermark (the max replica version) before routing stops sending it
	// traffic — the staleness bound on answers during update fan-out.
	// 0 (default) is unbounded: any replica may answer.
	MaxSkew uint64
	// ResultRows enables the versioned result cache with the given
	// capacity: answers are memoized by (node, graph version) and served
	// without touching a replica while the fleet watermark still equals
	// the memoized version. 0 disables. Sound because serving is
	// deterministic per (node, version).
	ResultRows int
	// Dynamic gives every replica its own graph.Dynamic over the
	// dataset's graph, enabling Update/AddNode fan-out. Replicas apply
	// the same update stream, so their versions advance in lockstep
	// (skew appears only mid-fan-out or via direct per-replica updates).
	Dynamic bool
	// Seed keys the random-routing draw sequence. Default 1.
	Seed uint64
}

func (o *Options) normalize() error {
	if o.Replicas < 1 {
		o.Replicas = 1
	}
	if o.Serve.Store != nil {
		return errors.New("fleet: Serve.Store must be nil (each replica builds its own store)")
	}
	if o.Serve.Graph != nil {
		return errors.New("fleet: Serve.Graph must be nil (set Options.Dynamic for per-replica dynamic graphs)")
	}
	if o.PriorityLevels < 1 {
		o.PriorityLevels = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return nil
}

// replica is one fleet member: its server, its in-flight request count
// (the bounded-load signal) and its graph-version watermark (the skew
// signal, advanced by update fan-outs and by the versions its own answers
// report).
type replica struct {
	srv      *serve.Server
	dyn      *graph.Dynamic // nil when the fleet is static
	inflight atomic.Int64
	version  atomic.Uint64
}

// noteVersion raises the watermark to v (monotonic; racing writers keep
// the max).
func (r *replica) noteVersion(v uint64) {
	for {
		cur := r.version.Load()
		if v <= cur || r.version.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Fleet is a replicated serving front end over N in-process servers. It
// implements serve.Submitter, so every load driver that feeds a Server
// feeds a Fleet unchanged. Create with New, submit from any number of
// goroutines, Close when done.
type Fleet struct {
	opts    Options
	reps    []*replica
	ring    *Ring
	results *resultCache // nil when ResultRows == 0

	rr atomic.Uint64 // random-routing draw counter

	// updateMu serializes Update/AddNode fan-outs so two concurrent
	// writers cannot interleave per-replica application orders (which
	// would make replica states diverge).
	updateMu sync.Mutex

	statsMu sync.Mutex
	latency event.Recorder        // fleet-level submit->answer latency, seconds
	sheds   [numShedReasons]int64 // router admission refusals by reason
	routed  []int64               // successful answers per replica
}

// New builds a fleet of opts.Replicas servers over ds, one model per
// replica (models[i] is replica i's — replicas must not share a model, its
// forward scratch is serialized per server). Use Replicate to clone a
// trained model fleet-wide.
func New(ds *dataset.Dataset, opts Options, models ...nn.Model) (*Fleet, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	if len(models) != opts.Replicas {
		return nil, fmt.Errorf("fleet: %d replicas need %d models, got %d", opts.Replicas, opts.Replicas, len(models))
	}
	for i, m := range models {
		for j := i + 1; j < len(models); j++ {
			if m == models[j] {
				return nil, fmt.Errorf("fleet: replicas %d and %d share a model (forwards would contend; use Replicate)", i, j)
			}
		}
	}
	f := &Fleet{
		opts:    opts,
		ring:    NewRing(opts.VNodes),
		results: newResultCache(opts.ResultRows),
		routed:  make([]int64, opts.Replicas),
	}
	for i := 0; i < opts.Replicas; i++ {
		sopts := opts.Serve
		rep := &replica{}
		if opts.Dynamic {
			dyn, err := graph.NewDynamic(ds.G, graph.DynamicOptions{})
			if err != nil {
				f.closeReplicas()
				return nil, fmt.Errorf("fleet: replica %d graph: %w", i, err)
			}
			rep.dyn = dyn
			sopts.Graph = dyn
		}
		srv, err := serve.New(models[i], ds, sopts)
		if err != nil {
			f.closeReplicas()
			return nil, fmt.Errorf("fleet: replica %d: %w", i, err)
		}
		rep.srv = srv
		f.reps = append(f.reps, rep)
		if err := f.ring.Add(i); err != nil {
			f.closeReplicas()
			return nil, err
		}
	}
	return f, nil
}

// Replicate builds n models with build and copies src's trained state
// (parameters and stat buffers) into each — the fleet-construction helper:
// build must construct the same architecture/config src was trained with
// (e.g. a train.NewModel closure).
func Replicate(src nn.Model, n int, build func() (nn.Model, error)) ([]nn.Model, error) {
	out := make([]nn.Model, n)
	for i := range out {
		m, err := build()
		if err != nil {
			return nil, fmt.Errorf("fleet: replicate model %d: %w", i, err)
		}
		if err := nn.CopyState(m, src); err != nil {
			return nil, fmt.Errorf("fleet: replicate model %d: %w", i, err)
		}
		out[i] = m
	}
	return out, nil
}

// NumReplicas returns the fleet size.
func (f *Fleet) NumReplicas() int { return len(f.reps) }

// Replica exposes replica i's server (tests and monitoring; production
// traffic goes through Submit/Predict so routing and admission apply).
func (f *Fleet) Replica(i int) *serve.Server { return f.reps[i].srv }

// Submit requests a prediction for node through the router and blocks for
// the label — the serve.Submitter method, QoS-free (no deadline, lowest
// priority).
func (f *Fleet) Submit(node int32) (int32, error) {
	p, err := f.PredictReq(serve.Request{Node: node})
	return p.Label, err
}

// Predict is Submit with the snapshot-version report.
func (f *Fleet) Predict(node int32) (serve.Prediction, error) {
	return f.PredictReq(serve.Request{Node: node})
}

// PredictReq answers one request end to end: result-cache probe, routing
// (affinity or random, skew-filtered, load-bounded), admission (deadline
// feasibility against the replica's live p95, priority versus queue
// occupancy), then the replica's own deadline-checked execution. Refusals
// are *ShedError with the reason; replica-level failures pass through
// (capacity saturations wrapped with their reason).
func (f *Fleet) PredictReq(r serve.Request) (serve.Prediction, error) {
	start := time.Now()
	maxV := f.maxVersion()
	if f.results != nil {
		if label, ok := f.results.Get(r.Node, maxV); ok {
			f.statsMu.Lock()
			f.latency.Add(time.Since(start).Seconds())
			f.statsMu.Unlock()
			return serve.Prediction{Label: label, Version: maxV}, nil
		}
	}
	idx := f.route(r.Node, maxV)
	rep := f.reps[idx]
	if !r.Deadline.IsZero() {
		if est := rep.srv.EstimateServiceTime(); est > 0 {
			if remaining := time.Until(r.Deadline); remaining < est {
				f.countShed(ShedDeadline)
				return serve.Prediction{}, &ShedError{
					Reason: ShedDeadline, Replica: idx,
					Remaining: remaining, Estimate: est, Err: ErrShedDeadline,
				}
			}
		}
	}
	if lv := f.opts.PriorityLevels; lv > 1 {
		if !admitPriority(rep.srv.QueueDepth(), rep.srv.QueueCap(), lv, int(r.Priority)) {
			f.countShed(ShedPriority)
			return serve.Prediction{}, shedErr(ShedPriority, idx)
		}
	}
	rep.inflight.Add(1)
	p, err := rep.srv.PredictReq(r)
	rep.inflight.Add(-1)
	if err != nil {
		if errors.Is(err, serve.ErrSaturated) {
			f.countShed(ShedCapacity)
			return p, &ShedError{Reason: ShedCapacity, Replica: idx, Err: err}
		}
		return p, err
	}
	rep.noteVersion(p.Version)
	if f.results != nil {
		f.results.Put(r.Node, p.Label, p.Version)
	}
	f.statsMu.Lock()
	f.routed[idx]++
	f.latency.Add(time.Since(start).Seconds())
	f.statsMu.Unlock()
	return p, nil
}

// admitPriority decides priority admission: priority p (clamped to
// levels-1) is admitted only while queue occupancy is under
// (p+1)/levels of capacity — as the queue fills, the lowest priority
// sheds first (at 1/levels occupancy) and each higher level holds on
// proportionally longer. The top priority is always admitted: for it the
// threshold degenerates to "queue full", which is the server's own
// ErrSaturated — a capacity condition, not a priority one — so leaving it
// to the server keeps the shed taxonomy honest.
func admitPriority(depth, qcap, levels, pri int) bool {
	if pri >= levels-1 {
		return true
	}
	if pri < 0 {
		pri = 0
	}
	return depth*levels < qcap*(pri+1)
}

// route picks the replica for node given the current fleet watermark.
// Hash routing walks the ring from node's home, skipping replicas lagging
// past MaxSkew and (under LoadFactor) replicas over the load bound;
// random routing draws a deterministic counter-keyed replica, rotated
// past lagging ones. Falls back to the first skew-eligible replica (all
// over bound), then to the home (transient all-lagging race) — routing
// never fails outright, admission decides the rest.
func (f *Fleet) route(node int32, maxV uint64) int {
	n := len(f.reps)
	if n == 1 {
		return 0
	}
	eligible := func(i int) bool {
		if f.opts.MaxSkew == 0 {
			return true
		}
		return maxV-f.reps[i].version.Load() <= f.opts.MaxSkew
	}
	if f.opts.Routing == RouteRandom {
		h := splitmix64(f.opts.Seed ^ f.rr.Add(1))
		for i := 0; i < n; i++ {
			if c := int((h + uint64(i)) % uint64(n)); eligible(c) {
				return c
			}
		}
		return int(h % uint64(n))
	}
	key := keyHash(node)
	bound := int64(math.MaxInt64)
	if f.opts.LoadFactor > 1 {
		var total int64
		for _, rep := range f.reps {
			total += rep.inflight.Load()
		}
		bound = int64(math.Ceil(f.opts.LoadFactor * float64(total+1) / float64(n)))
	}
	chosen, fallback := -1, -1
	f.ring.Walk(key, func(i int) bool {
		if !eligible(i) {
			return false
		}
		if fallback < 0 {
			fallback = i
		}
		if f.reps[i].inflight.Load() < bound {
			chosen = i
			return true
		}
		return false
	})
	if chosen >= 0 {
		return chosen
	}
	if fallback >= 0 {
		return fallback
	}
	return f.ring.Home(key)
}

func (f *Fleet) countShed(r ShedReason) {
	f.statsMu.Lock()
	f.sheds[r]++
	f.statsMu.Unlock()
}

// maxVersion returns the fleet watermark: the highest graph version any
// replica is known to have reached.
func (f *Fleet) maxVersion() uint64 {
	var max uint64
	for _, rep := range f.reps {
		if v := rep.version.Load(); v > max {
			max = v
		}
	}
	return max
}

// RefreshVersions re-reads every dynamic replica's live graph version into
// its watermark — the poll tests and monitors use after mutating a replica
// directly (normal fan-out and answered predictions keep the watermarks
// fresh on their own).
func (f *Fleet) RefreshVersions() {
	for _, rep := range f.reps {
		if rep.dyn != nil {
			rep.noteVersion(rep.dyn.Version())
		}
	}
}

// Update fans a batch of edge insertions out to every replica's graph in
// replica order and returns the applied count and the fleet's new
// watermark. Replicas apply identical streams (fan-outs are serialized),
// so their applied counts and versions agree; a replica error aborts the
// fan-out mid-way — the version watermark then reflects the skew, and
// MaxSkew routing keeps answers within bound while the caller retries.
// Stale memoized results below the new watermark are swept eagerly.
func (f *Fleet) Update(src, dst []int32) (int, uint64, error) {
	f.updateMu.Lock()
	defer f.updateMu.Unlock()
	applied, maxVer := 0, uint64(0)
	for i, rep := range f.reps {
		a, v, err := rep.srv.Update(src, dst)
		if err != nil {
			return 0, f.maxVersion(), fmt.Errorf("fleet: replica %d update: %w", i, err)
		}
		rep.noteVersion(v)
		if i == 0 {
			applied = a
		}
		if v > maxVer {
			maxVer = v
		}
	}
	if f.results != nil {
		f.results.InvalidateBelow(maxVer)
	}
	return applied, maxVer, nil
}

// AddNode fans one node insertion out to every replica (each appends the
// feature row to its own store and grows its own graph) and returns the
// new node ID — identical on every replica, enforced — plus the new
// watermark.
func (f *Fleet) AddNode(feat []float32, label int32, neighbors []int32) (int32, uint64, error) {
	f.updateMu.Lock()
	defer f.updateMu.Unlock()
	var id int32
	var maxVer uint64
	for i, rep := range f.reps {
		nid, v, err := rep.srv.AddNode(feat, label, neighbors)
		if err != nil {
			return 0, f.maxVersion(), fmt.Errorf("fleet: replica %d addnode: %w", i, err)
		}
		if i == 0 {
			id = nid
		} else if nid != id {
			return 0, f.maxVersion(), fmt.Errorf("fleet: replica %d assigned node %d, replica 0 assigned %d (replica states diverged)", i, nid, id)
		}
		rep.noteVersion(v)
		if v > maxVer {
			maxVer = v
		}
	}
	if f.results != nil {
		f.results.InvalidateBelow(maxVer)
	}
	return id, maxVer, nil
}

// Close shuts every replica down (draining their queues).
func (f *Fleet) Close() { f.closeReplicas() }

func (f *Fleet) closeReplicas() {
	for _, rep := range f.reps {
		if rep.srv != nil {
			rep.srv.Close()
		}
	}
}

// ResultCacheLen returns the number of memoized answers (0 when the
// result cache is disabled).
func (f *Fleet) ResultCacheLen() int {
	if f.results == nil {
		return 0
	}
	return f.results.Len()
}

// ResetStats zeroes the fleet's own counters, the result cache's traffic
// counters, and every replica's stats — the warm-up/measure seam. Cached
// rows, memoized results and version watermarks stay.
func (f *Fleet) ResetStats() {
	f.statsMu.Lock()
	f.latency = event.Recorder{}
	f.sheds = [numShedReasons]int64{}
	for i := range f.routed {
		f.routed[i] = 0
	}
	f.statsMu.Unlock()
	if f.results != nil {
		f.results.ResetStats()
	}
	for _, rep := range f.reps {
		rep.srv.ResetStats()
	}
}
