package bench

import (
	"os"
	"path/filepath"
	"testing"
)

// TestFleetSweepSmall runs the replicated-serving grid at smoke scale and
// checks the rows that carry the sweep's claims: a 1-replica baseline,
// hash affinity beating random routing on combined cache hit rate at the
// fixed total budget, the result memo absorbing repeats, and the overload
// row shedding the low priority class ahead of the high one.
func TestFleetSweepSmall(t *testing.T) {
	opts := smallFleet()
	results, err := fleetResults(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("got %d rows, want 4 routing rows + 1 overload row", len(results))
	}
	byKey := map[string]FleetResult{}
	for _, r := range results {
		if r.Phase == "routing" && (r.P99Ms <= 0 || r.P99Ms < r.P50Ms) {
			t.Fatalf("%s/%d: implausible latency row %+v", r.Routing, r.Replicas, r)
		}
		byKey[r.Routing] = r
	}

	hash, random := byKey["hash"], byKey["random"]
	if hash.Replicas != opts.Replicas || random.Replicas != opts.Replicas {
		t.Fatalf("grid rows mis-labeled: hash=%+v random=%+v", hash, random)
	}
	// The tentpole claim: at a fixed TOTAL cache budget split across
	// replicas, affinity routing keeps each replica's partition of the hot
	// set resident; random routing dilutes every cache with the full
	// distribution.
	if hash.CombinedHit <= random.CombinedHit {
		t.Fatalf("hash combined hit rate %.3f not above random %.3f",
			hash.CombinedHit, random.CombinedHit)
	}
	if hash.VIPHit == 0 || hash.EmbHit == 0 {
		t.Fatalf("hash row missing cache traffic: %+v", hash)
	}
	if hash.ResultHit != 0 {
		t.Fatalf("memo-less hash row reports result hits: %+v", hash)
	}

	memo := byKey["hash+memo"]
	if memo.ResultHit <= 0 {
		t.Fatalf("Zipf repeats produced no result-memo hits: %+v", memo)
	}

	over := byKey["hash+pri"]
	if over.Phase != "overload" {
		t.Fatalf("overload row mis-phased: %+v", over)
	}
	// Priority admission must never shed the high class ahead of the low
	// one; if the tiny queue filled at all, the low class pays first.
	if over.HighShedFrac > over.LowShedFrac {
		t.Fatalf("high-priority shed fraction %.3f above low %.3f",
			over.HighShedFrac, over.LowShedFrac)
	}
	if over.HighMissFrac != 0 {
		t.Fatalf("high-priority deadline misses at smoke scale: %+v", over)
	}
}

// TestWriteBenchArtifactsFleet writes BENCH_fleet.json for the CI
// bench-smoke job (its -run pattern matches the TestWriteBenchArtifacts
// prefix). A no-op unless BENCH_ARTIFACT_DIR is set.
func TestWriteBenchArtifactsFleet(t *testing.T) {
	dir := os.Getenv("BENCH_ARTIFACT_DIR")
	if dir == "" {
		t.Skip("BENCH_ARTIFACT_DIR not set")
	}
	path := filepath.Join(dir, "BENCH_fleet.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := FleetSweepJSON(f, smallFleet()); err != nil {
		f.Close()
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
}
