package device

import "salient/internal/half"

// PrecisionTransferScale returns the host-to-device payload multiplier of
// storing dim-wide feature rows at the given precision, relative to the
// fp16 baseline the paper's calibrations assume (Table 1 transfers
// half-precision features, §3.3). Feature rows dominate batch payload, so
// scaling DatasetCal.TransferBytes by this factor models a precision switch:
// fp32 doubles the volume, int8 roughly halves it ((dim+4)/(2·dim) — the
// +4 is the per-row dequantization scale traveling with the row).
func PrecisionTransferScale(prec half.Precision, dim int) float64 {
	return float64(prec.RowBytes(dim)) / float64(half.FP16.RowBytes(dim))
}

// FusedTransferScale returns the payload multiplier of the fused
// gather+aggregate pipeline relative to staged transfer at the given storage
// precision. The staged path ships every sampled source row (≈ (1+fanout)
// rows per seed at the storage precision); the fused path ships only the
// pre-aggregated neighbor sums plus the seeds' own rows — 2 float32 rows per
// seed — because the first layer's aggregation already happened host-side
// during the gather. avgFanout is the expected layer-0 in-degree (the last
// entry of the training fanouts, e.g. 15 for the paper's (15,10,5)).
func FusedTransferScale(avgFanout float64, prec half.Precision, dim int) float64 {
	if avgFanout < 0 {
		avgFanout = 0
	}
	stagedRow := float64(prec.RowBytes(dim))
	fusedRows := 2 * float64(half.FP32.RowBytes(dim))
	return fusedRows / ((1 + avgFanout) * stagedRow)
}

// WithPrecision returns a copy of the calibration with the transfer volume
// rescaled to the given feature-storage precision, and slicing time scaled
// with it (slicing is bandwidth-bound on the feature bytes it stages, §4.2).
// dim is the dataset's feature width.
func (c DatasetCal) WithPrecision(prec half.Precision, dim int) DatasetCal {
	s := PrecisionTransferScale(prec, dim)
	c.TransferBytes *= s
	c.SliceSec *= s
	return c
}

// WithFused returns a copy of the calibration with the transfer volume
// rescaled for the fused gather+aggregate pipeline at the given storage
// precision and expected layer-0 fanout. Slicing time is left unchanged:
// the fused kernel still touches every stored source row once (and pays the
// aggregation adds), it just stops staging them for transfer.
func (c DatasetCal) WithFused(avgFanout float64, prec half.Precision, dim int) DatasetCal {
	c.TransferBytes *= FusedTransferScale(avgFanout, prec, dim)
	return c
}
