package nn

import (
	"math"

	"salient/internal/tensor"
)

// BatchNorm is 1-D batch normalization over feature columns with running
// statistics (torch.nn.BatchNorm1d semantics: biased variance for
// normalization, momentum-0.1 running updates, eval mode uses running stats).
type BatchNorm struct {
	Gamma *Param // 1 × C
	Beta  *Param // 1 × C

	RunningMean []float32
	RunningVar  []float32
	Momentum    float32
	Eps         float32

	// Backward caches.
	xhat   *tensor.Dense
	invStd []float32
}

// NewBatchNorm creates a batch-norm layer over dim features.
func NewBatchNorm(name string, dim int) *BatchNorm {
	bn := &BatchNorm{
		Gamma:       NewParam(name+".gamma", 1, dim),
		Beta:        NewParam(name+".beta", 1, dim),
		RunningMean: make([]float32, dim),
		RunningVar:  make([]float32, dim),
		Momentum:    0.1,
		Eps:         1e-5,
	}
	bn.Gamma.W.Fill(1)
	for i := range bn.RunningVar {
		bn.RunningVar[i] = 1
	}
	return bn
}

// Forward normalizes x. In training mode it uses batch statistics and
// updates the running estimates; in eval mode it uses the running estimates.
func (bn *BatchNorm) Forward(x *tensor.Dense, train bool) *tensor.Dense {
	c := x.Cols
	n := x.Rows
	y := tensor.New(n, c)
	if !train || n == 0 {
		for i := 0; i < n; i++ {
			xr, yr := x.Row(i), y.Row(i)
			for j := 0; j < c; j++ {
				inv := 1 / float32(math.Sqrt(float64(bn.RunningVar[j]+bn.Eps)))
				yr[j] = bn.Gamma.W.Data[j]*(xr[j]-bn.RunningMean[j])*inv + bn.Beta.W.Data[j]
			}
		}
		bn.xhat = nil
		return y
	}

	mean := make([]float32, c)
	variance := make([]float32, c)
	for i := 0; i < n; i++ {
		xr := x.Row(i)
		for j, v := range xr {
			mean[j] += v
		}
	}
	invN := 1 / float32(n)
	for j := range mean {
		mean[j] *= invN
	}
	for i := 0; i < n; i++ {
		xr := x.Row(i)
		for j, v := range xr {
			d := v - mean[j]
			variance[j] += d * d
		}
	}
	for j := range variance {
		variance[j] *= invN
	}

	bn.invStd = make([]float32, c)
	for j := range bn.invStd {
		bn.invStd[j] = 1 / float32(math.Sqrt(float64(variance[j]+bn.Eps)))
	}
	bn.xhat = tensor.New(n, c)
	for i := 0; i < n; i++ {
		xr, hr, yr := x.Row(i), bn.xhat.Row(i), y.Row(i)
		for j := 0; j < c; j++ {
			h := (xr[j] - mean[j]) * bn.invStd[j]
			hr[j] = h
			yr[j] = bn.Gamma.W.Data[j]*h + bn.Beta.W.Data[j]
		}
	}

	// Running stats use the unbiased variance, as torch does.
	unbias := float32(1)
	if n > 1 {
		unbias = float32(n) / float32(n-1)
	}
	for j := 0; j < c; j++ {
		bn.RunningMean[j] = (1-bn.Momentum)*bn.RunningMean[j] + bn.Momentum*mean[j]
		bn.RunningVar[j] = (1-bn.Momentum)*bn.RunningVar[j] + bn.Momentum*variance[j]*unbias
	}
	return y
}

// Backward (training mode only) returns dx and accumulates dGamma/dBeta.
func (bn *BatchNorm) Backward(dy *tensor.Dense) *tensor.Dense {
	if bn.xhat == nil {
		panic("nn: BatchNorm.Backward without a training-mode Forward") //lint:allow panicdiscipline API misuse guard: Backward without Forward has no saved statistics to use
	}
	n, c := dy.Rows, dy.Cols
	sumDy := make([]float32, c)
	sumDyXhat := make([]float32, c)
	for i := 0; i < n; i++ {
		dr, hr := dy.Row(i), bn.xhat.Row(i)
		for j := 0; j < c; j++ {
			sumDy[j] += dr[j]
			sumDyXhat[j] += dr[j] * hr[j]
			bn.Gamma.G.Data[j] += dr[j] * hr[j]
			bn.Beta.G.Data[j] += dr[j]
		}
	}
	dx := tensor.New(n, c)
	invN := 1 / float32(n)
	for i := 0; i < n; i++ {
		dr, hr, xr := dy.Row(i), bn.xhat.Row(i), dx.Row(i)
		for j := 0; j < c; j++ {
			xr[j] = bn.Gamma.W.Data[j] * bn.invStd[j] *
				(dr[j] - invN*sumDy[j] - hr[j]*invN*sumDyXhat[j])
		}
	}
	return dx
}

// Params returns the trainable parameters.
func (bn *BatchNorm) Params() []*Param { return []*Param{bn.Gamma, bn.Beta} }
