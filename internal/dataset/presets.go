package dataset

import "fmt"

// Preset names for the three paper benchmark datasets.
const (
	Arxiv    = "arxiv"
	Products = "products"
	Papers   = "papers"
)

// PresetConfig returns the generation config for a named stand-in dataset,
// scaled down from the OGB original by roughly 10x–1000x in node count while
// preserving split ratios, feature dimensionality, class count and average
// degree. scale multiplies the node count (1.0 = the default reduced size;
// use smaller values in unit tests).
//
// Originals (paper Table 4):
//
//	arxiv:    169K nodes, 1.2M edges, 128 feats, 40 classes, 54/18/28% split
//	products: 2.4M nodes,  62M edges, 100 feats, 47 classes, 8/1.6/90% split
//	papers:   111M nodes, 1.6B edges, 128 feats, 172 classes, 1.1/0.11/0.19% split
func PresetConfig(name string, scale float64) Config {
	if scale <= 0 {
		scale = 1
	}
	switch name {
	case Arxiv:
		return Config{
			Name:        Arxiv,
			Nodes:       int32(17000 * scale),
			EdgesPerNew: 7, // undirected avg degree ~14, matching 2*1.2M/169K
			FeatDim:     128,
			NumClasses:  40,
			Homophily:   0.62,
			NoiseScale:  1.3,
			TrainFrac:   0.54,
			ValFrac:     0.18,
			TestFrac:    0.28,
			Seed:        1001,
		}
	case Products:
		return Config{
			Name:        Products,
			Nodes:       int32(48000 * scale),
			EdgesPerNew: 26, // undirected avg degree ~52, matching 2*62M/2.4M
			FeatDim:     100,
			NumClasses:  47,
			Homophily:   0.68,
			NoiseScale:  0.8,
			TrainFrac:   0.082, // 197K/2.4M
			ValFrac:     0.016,
			TestFrac:    0.90,
			Seed:        1002,
		}
	case Papers:
		// The OGB original labels only 1.3% of nodes (1.2M train / 111M).
		// At a ~1000x-reduced node count that ratio leaves too few labeled
		// examples per class to learn anything, so the stand-in preserves
		// the property that matters (train and test are small fractions,
		// with most nodes unlabeled context) at learnable absolute sizes,
		// and scales the class count down with the label budget.
		return Config{
			Name:        Papers,
			Nodes:       int32(96000 * scale),
			EdgesPerNew: 14, // undirected avg degree ~29, matching 2*1.6B/111M
			FeatDim:     128,
			NumClasses:  64,
			Homophily:   0.55,
			NoiseScale:  1.1,
			TrainFrac:   0.12,
			ValFrac:     0.012,
			TestFrac:    0.021,
			Seed:        1003,
		}
	default:
		panic("dataset: unknown preset " + name) //lint:allow panicdiscipline documented contract: PresetConfig panics on unknown names; Load is the error-returning wrapper
	}
}

// Load generates the named preset dataset at the given scale. Unlike
// PresetConfig (which panics on programmer error), Load reports an unknown
// preset name as an error, since the name typically arrives from a CLI flag.
func Load(name string, scale float64) (*Dataset, error) {
	switch name {
	case Arxiv, Products, Papers:
	default:
		return nil, fmt.Errorf("dataset: unknown preset %q (have %s, %s, %s)",
			name, Arxiv, Products, Papers)
	}
	return Generate(PresetConfig(name, scale))
}
