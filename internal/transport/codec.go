package transport

import (
	"encoding/binary"
	"io"
	"math"

	"salient/internal/half"
)

// Wire format: length-prefixed frames, little-endian throughout.
//
//	[u32 frameLen][u8 msgType][payload ...]   frameLen = 1 + len(payload)
//
// Payloads:
//
//	hello     u16 proto · u32 dim · u64 numNodes · u64 numEdges ·
//	          u8 precision · u64 graphVersion
//	rowsReq   u32 n · n×u32 nodeID
//	rowsResp  u32 n · n×rowBytes(prec,dim) feature payload · n×u32 label
//	          (int8 rows carry dim bytes + one f32 scale each, the same
//	          per-row layout as the host rowMat)
//	neighReq  u32 n · n×u32 nodeID
//	neighResp u32 n · n×u32 degree · total×u32 neighbor
//	errResp   u8 kind · u32 msgLen · msg bytes
//
// The *FrameBytes helpers below are the single source of wire-size truth:
// the TCP encoder emits frames of exactly these sizes, and the loopback
// transport charges them as its accounting — which is what lets a loopback
// run predict a TCP run's traffic bit-for-bit.

const (
	msgHello     byte = 1
	msgRowsReq   byte = 2
	msgRowsResp  byte = 3
	msgNeighReq  byte = 4
	msgNeighResp byte = 5
	msgError     byte = 6
)

const (
	frameHeaderBytes  = 5 // u32 length + u8 type
	helloPayloadBytes = 2 + 4 + 8 + 8 + 1 + 8
	// maxFramePayload bounds a single frame; anything larger is rejected as
	// corrupt before allocation (a garbage length prefix must not OOM us).
	maxFramePayload = 1 << 28
)

// HelloFrameBytes returns the framed size of the handshake message.
func HelloFrameBytes() int64 { return frameHeaderBytes + helloPayloadBytes }

// RowsReqFrameBytes returns the framed size of a FetchRows request for n IDs.
func RowsReqFrameBytes(n int) int64 {
	return frameHeaderBytes + 4 + 4*int64(n)
}

// RowsRespFrameBytes returns the framed size of a FetchRows response: n rows
// of dim at prec plus n labels.
func RowsRespFrameBytes(n, dim int, prec half.Precision) int64 {
	return frameHeaderBytes + 4 + int64(n)*prec.RowBytes(dim) + 4*int64(n)
}

// NeighReqFrameBytes returns the framed size of a FetchNeighbors request.
func NeighReqFrameBytes(n int) int64 {
	return frameHeaderBytes + 4 + 4*int64(n)
}

// NeighRespFrameBytes returns the framed size of a FetchNeighbors response
// for n IDs whose adjacency totals total entries.
func NeighRespFrameBytes(n int, total int64) int64 {
	return frameHeaderBytes + 4 + 4*int64(n) + 4*total
}

// appendHeader appends a frame header for a payload of payloadLen bytes.
func appendHeader(b []byte, typ byte, payloadLen int) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(payloadLen)+1)
	return append(b, typ)
}

// appendHello appends a complete hello frame.
func appendHello(b []byte, h Hello) []byte {
	b = appendHeader(b, msgHello, helloPayloadBytes)
	b = binary.LittleEndian.AppendUint16(b, h.Proto)
	b = binary.LittleEndian.AppendUint32(b, uint32(h.Dim))
	b = binary.LittleEndian.AppendUint64(b, uint64(h.NumNodes))
	b = binary.LittleEndian.AppendUint64(b, uint64(h.NumEdges))
	b = append(b, byte(h.Precision))
	b = binary.LittleEndian.AppendUint64(b, h.GraphVersion)
	return b
}

func decodeHello(payload []byte) (Hello, error) {
	if len(payload) != helloPayloadBytes {
		return Hello{}, errf(ErrProto, "handshake", nil, "hello payload %d bytes, want %d", len(payload), helloPayloadBytes)
	}
	var h Hello
	h.Proto = binary.LittleEndian.Uint16(payload[0:])
	h.Dim = int(binary.LittleEndian.Uint32(payload[2:]))
	h.NumNodes = int(binary.LittleEndian.Uint64(payload[6:]))
	h.NumEdges = int64(binary.LittleEndian.Uint64(payload[14:]))
	h.Precision = half.Precision(payload[22])
	h.GraphVersion = binary.LittleEndian.Uint64(payload[23:])
	if !h.Precision.Valid() {
		return Hello{}, errf(ErrProto, "handshake", nil, "invalid precision byte %d", payload[22])
	}
	return h, nil
}

// appendIDsFrame appends a rowsReq or neighReq frame.
func appendIDsFrame(b []byte, typ byte, ids []int32) []byte {
	b = appendHeader(b, typ, 4+4*len(ids))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(ids)))
	for _, id := range ids {
		b = binary.LittleEndian.AppendUint32(b, uint32(id))
	}
	return b
}

// decodeIDs parses a rowsReq/neighReq payload, reusing ids' capacity.
func decodeIDs(payload []byte, ids []int32) ([]int32, error) {
	if len(payload) < 4 {
		return nil, errf(ErrProto, "request", nil, "truncated ID list header")
	}
	n := int(binary.LittleEndian.Uint32(payload))
	if len(payload) != 4+4*n {
		return nil, errf(ErrProto, "request", nil, "ID list claims %d entries in %d payload bytes", n, len(payload))
	}
	if cap(ids) < n {
		ids = make([]int32, n)
	}
	ids = ids[:n]
	for i := range ids {
		ids[i] = int32(binary.LittleEndian.Uint32(payload[4+4*i:]))
	}
	return ids, nil
}

// appendRowsResp appends a rowsResp frame carrying rows at its precision.
func appendRowsResp(b []byte, rows *Rows) []byte {
	n, dim := rows.N, rows.Dim
	b = appendHeader(b, msgRowsResp, int(RowsRespFrameBytes(n, dim, rows.Prec))-frameHeaderBytes)
	b = binary.LittleEndian.AppendUint32(b, uint32(n))
	switch rows.Prec {
	case half.FP32:
		for _, f := range rows.F[:n*dim] {
			b = binary.LittleEndian.AppendUint32(b, math.Float32bits(f))
		}
	case half.Int8:
		for _, q := range rows.Q[:n*dim] {
			b = append(b, byte(q))
		}
		for _, s := range rows.Scales[:n] {
			b = binary.LittleEndian.AppendUint32(b, math.Float32bits(s))
		}
	default:
		for _, h := range rows.H[:n*dim] {
			b = binary.LittleEndian.AppendUint16(b, uint16(h))
		}
	}
	for _, l := range rows.Labels[:n] {
		b = binary.LittleEndian.AppendUint32(b, uint32(l))
	}
	return b
}

// decodeRowsResp parses a rowsResp payload into dst, which the caller sizes
// expectations for: n rows of dim at prec (known from the request and the
// handshake). A count or size disagreement is a typed proto error.
func decodeRowsResp(payload []byte, dst *Rows, n, dim int, prec half.Precision) error {
	want := int(RowsRespFrameBytes(n, dim, prec)) - frameHeaderBytes
	if len(payload) != want {
		return errf(ErrProto, "fetch_rows", nil, "response payload %d bytes, want %d", len(payload), want)
	}
	if got := int(binary.LittleEndian.Uint32(payload)); got != n {
		return errf(ErrProto, "fetch_rows", nil, "response carries %d rows, requested %d", got, n)
	}
	dst.Ensure(n, dim, prec)
	p := payload[4:]
	switch prec {
	case half.FP32:
		for i := range dst.F[:n*dim] {
			dst.F[i] = math.Float32frombits(binary.LittleEndian.Uint32(p[4*i:]))
		}
		p = p[4*n*dim:]
	case half.Int8:
		for i := range dst.Q[:n*dim] {
			dst.Q[i] = int8(p[i])
		}
		p = p[n*dim:]
		for i := range dst.Scales[:n] {
			dst.Scales[i] = math.Float32frombits(binary.LittleEndian.Uint32(p[4*i:]))
		}
		p = p[4*n:]
	default:
		for i := range dst.H[:n*dim] {
			dst.H[i] = half.Float16(binary.LittleEndian.Uint16(p[2*i:]))
		}
		p = p[2*n*dim:]
	}
	for i := range dst.Labels[:n] {
		dst.Labels[i] = int32(binary.LittleEndian.Uint32(p[4*i:]))
	}
	return nil
}

// appendNeighResp appends a neighResp frame for n requested IDs.
func appendNeighResp(b []byte, adj *Adjacency) []byte {
	n := len(adj.Ptr) - 1
	total := int64(len(adj.Adj))
	b = appendHeader(b, msgNeighResp, int(NeighRespFrameBytes(n, total))-frameHeaderBytes)
	b = binary.LittleEndian.AppendUint32(b, uint32(n))
	for i := 0; i < n; i++ {
		b = binary.LittleEndian.AppendUint32(b, uint32(adj.Ptr[i+1]-adj.Ptr[i]))
	}
	for _, u := range adj.Adj {
		b = binary.LittleEndian.AppendUint32(b, uint32(u))
	}
	return b
}

// decodeNeighResp parses a neighResp payload into dst for n requested IDs.
func decodeNeighResp(payload []byte, dst *Adjacency, n int) error {
	if len(payload) < 4+4*n {
		return errf(ErrProto, "fetch_neighbors", nil, "response payload %d bytes, want ≥%d", len(payload), 4+4*n)
	}
	if got := int(binary.LittleEndian.Uint32(payload)); got != n {
		return errf(ErrProto, "fetch_neighbors", nil, "response carries %d adjacency lists, requested %d", got, n)
	}
	dst.Reset()
	if cap(dst.Ptr) < n+1 {
		dst.Ptr = make([]int64, 0, n+1)
	}
	dst.Ptr = append(dst.Ptr, 0)
	var total int64
	degs := payload[4:]
	for i := 0; i < n; i++ {
		total += int64(binary.LittleEndian.Uint32(degs[4*i:]))
		dst.Ptr = append(dst.Ptr, total)
	}
	if int64(len(payload)) != 4+4*int64(n)+4*total {
		return errf(ErrProto, "fetch_neighbors", nil, "adjacency claims %d entries in %d payload bytes", total, len(payload))
	}
	if int64(cap(dst.Adj)) < total {
		dst.Adj = make([]int32, 0, total)
	}
	body := degs[4*n:]
	for i := int64(0); i < total; i++ {
		dst.Adj = append(dst.Adj, int32(binary.LittleEndian.Uint32(body[4*i:])))
	}
	return nil
}

// appendErrResp appends an errResp frame carrying a typed rejection.
func appendErrResp(b []byte, kind ErrKind, msg string) []byte {
	b = appendHeader(b, msgError, 1+4+len(msg))
	b = append(b, byte(kind))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(msg)))
	return append(b, msg...)
}

func decodeErrResp(payload []byte) (ErrKind, string, error) {
	if len(payload) < 5 {
		return 0, "", errf(ErrProto, "response", nil, "truncated error frame")
	}
	kind := ErrKind(payload[0])
	msgLen := int(binary.LittleEndian.Uint32(payload[1:]))
	if len(payload) != 5+msgLen {
		return 0, "", errf(ErrProto, "response", nil, "error frame claims %d message bytes in %d payload", msgLen, len(payload))
	}
	return kind, string(payload[5:]), nil
}

// readFrame reads one complete frame, reusing scratch's capacity for the
// payload. It returns the message type, the payload (aliasing the returned
// scratch), and the possibly-grown scratch for the next call. Truncation and
// oversized lengths are typed proto errors; raw I/O failures pass through
// for the caller's transient classification.
func readFrame(r io.Reader, scratch []byte) (byte, []byte, []byte, error) {
	var hdr [frameHeaderBytes]byte
	if _, err := io.ReadFull(r, hdr[:4]); err != nil {
		return 0, nil, scratch, err
	}
	frameLen := binary.LittleEndian.Uint32(hdr[:4])
	if frameLen == 0 {
		return 0, nil, scratch, errf(ErrProto, "frame", nil, "zero-length frame")
	}
	if frameLen > maxFramePayload {
		return 0, nil, scratch, errf(ErrProto, "frame", nil, "frame length %d exceeds limit %d", frameLen, maxFramePayload)
	}
	if _, err := io.ReadFull(r, hdr[4:5]); err != nil {
		return 0, nil, scratch, truncated(err)
	}
	typ := hdr[4]
	payloadLen := int(frameLen) - 1
	if cap(scratch) < payloadLen {
		scratch = make([]byte, payloadLen)
	}
	scratch = scratch[:payloadLen]
	if _, err := io.ReadFull(r, scratch); err != nil {
		return 0, nil, scratch, truncated(err)
	}
	return typ, scratch, scratch, nil
}

// truncated maps a mid-frame EOF to ErrUnexpectedEOF so readers see one
// consistent "stream died inside a frame" cause.
func truncated(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
