package analysis

import (
	"go/ast"
	"go/types"

	goanalysis "golang.org/x/tools/go/analysis"
)

// determinismScope lists the packages whose execution must be a pure
// function of (dataset, config, seed): the sampling/preparation/training
// path, where PR 3 pinned bit-identical results across replica counts and
// execution orders. Scoping is by package basename so the analyzer covers
// both the real tree and its testdata replicas.
var determinismScope = map[string]bool{
	"sampler": true,
	"prep":    true,
	"train":   true,
	"ddp":     true,
	"nn":      true,
}

// randSafe lists math/rand package-level functions that do NOT touch the
// process-global generator; everything else package-level does.
var randSafe = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewPCG":     true, // math/rand/v2
	"NewZipf":    true,
	"NewChaCha8": true,
}

// Determinism enforces the reproducibility contract of the data path: no
// draws from the global math/rand generator (seeded per-process, shared
// across goroutines), no seeds derived from wall-clock time, and no map
// iteration order feeding ordered results (appends or channel sends).
// Randomness flows from explicit rng.Rand instances keyed by
// (seed, epoch, global batch index).
var Determinism = &goanalysis.Analyzer{
	Name: "determinism",
	Doc:  "forbid global math/rand, wall-clock seeds, and map-order-dependent results in the deterministic data path",
	Run:  runDeterminism,
}

func runDeterminism(pass *goanalysis.Pass) (interface{}, error) {
	if !determinismScope[pkgBase(pass.Pkg.Path())] {
		return nil, nil
	}
	idx := buildAllowIndex(pass)
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				checkGlobalRand(pass, idx, n)
				checkWallClockSeed(pass, idx, n)
			case *ast.RangeStmt:
				checkMapRange(pass, idx, n)
			}
			return true
		})
	}
	return nil, nil
}

// checkGlobalRand flags selections of math/rand package-level functions
// that draw from the process-global generator.
func checkGlobalRand(pass *goanalysis.Pass, idx *allowIndex, sel *ast.SelectorExpr) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return
	}
	path := pn.Imported().Path()
	if path != "math/rand" && path != "math/rand/v2" {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || randSafe[fn.Name()] {
		return // type names, and constructors taking explicit sources/seeds
	}
	report(pass, idx, sel.Sel.Pos(),
		"%s.%s draws from the process-global generator: use an explicit rng seeded from (seed, epoch, batch index)", pn.Name(), fn.Name())
}

// checkWallClockSeed flags time.Now().UnixNano() and friends — integerized
// wall-clock time, the classic nondeterministic seed. Duration timing
// (time.Since, Sub) stays legal.
func checkWallClockSeed(pass *goanalysis.Pass, idx *allowIndex, sel *ast.SelectorExpr) {
	switch sel.Sel.Name {
	case "Unix", "UnixNano", "UnixMilli", "UnixMicro":
	default:
		return
	}
	call, ok := sel.X.(*ast.CallExpr)
	if !ok {
		return
	}
	inner, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || inner.Sel.Name != "Now" {
		return
	}
	id, ok := inner.X.(*ast.Ident)
	if !ok {
		return
	}
	if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); !ok || pn.Imported().Path() != "time" {
		return
	}
	report(pass, idx, sel.Sel.Pos(),
		"time.Now().%s() derives a value from wall-clock time: seeds in the deterministic data path must come from config", sel.Sel.Name)
}

// checkMapRange flags `range m` over a map whose body feeds an
// order-sensitive sink: an append to a variable declared outside the loop,
// or a channel send. Commutative aggregation (counters, max, set inserts)
// stays legal.
func checkMapRange(pass *goanalysis.Pass, idx *allowIndex, rng *ast.RangeStmt) {
	if _, ok := pass.TypesInfo.TypeOf(rng.X).Underlying().(*types.Map); !ok {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			report(pass, idx, n.Pos(), "channel send inside a map range: map iteration order would feed the receiver")
			return true
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltin(pass, call.Fun, "append") || i >= len(n.Lhs) {
					continue
				}
				if target, ok := n.Lhs[i].(*ast.Ident); ok {
					obj := pass.TypesInfo.ObjectOf(target)
					if obj != nil && rng.Body.Pos() <= obj.Pos() && obj.Pos() < rng.Body.End() {
						continue // loop-local accumulation
					}
				}
				report(pass, idx, call.Pos(), "append to an outer slice inside a map range: map iteration order would feed the result")
			}
		}
		return true
	})
}

// isBuiltin reports whether fun resolves to the named builtin.
func isBuiltin(pass *goanalysis.Pass, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}
