package sampler

import (
	"fmt"

	"salient/internal/graph"
	"salient/internal/mfg"
	"salient/internal/rng"
)

// Sampler draws multi-hop sampled neighborhoods (MFGs) from a graph.
//
// A Sampler is not safe for concurrent use; SALIENT's shared-memory batch
// preparation gives each worker goroutine its own Sampler (paper §4.2),
// which is also what makes the pooled-reuse configurations safe.
//
// With Reuse == ReusePooledAll the returned MFG aliases internal buffers and
// is invalidated by the next Sample call on the same Sampler. This mirrors
// SALIENT's recycled batch slots; callers that need longer-lived batches use
// one Sampler per in-flight slot (as the prep executor does) or a different
// reuse policy.
type Sampler struct {
	G       *graph.CSR
	Fanouts []int // Fanouts[0] feeds GNN layer 1 (the outermost hop)

	cfg    Config
	mapper localMapper
	picker neighborPicker

	// Pooled buffers (ReusePooledAll).
	nodeIDs  []int32
	dstPtrs  [][]int32
	srcBufs  [][]int32
	phaseBuf []int32 // two-phase sampled-globals buffer
	phaseCnt []int32 // two-phase per-destination counts
}

// New returns a sampler over g with the given per-layer fanouts and design
// configuration.
func New(g *graph.CSR, fanouts []int, cfg Config) *Sampler {
	if len(fanouts) == 0 {
		panic("sampler: empty fanouts")
	}
	for _, f := range fanouts {
		if f < 1 {
			panic(fmt.Sprintf("sampler: fanout %d < 1", f))
		}
	}
	s := &Sampler{
		G:       g,
		Fanouts: append([]int(nil), fanouts...),
		cfg:     cfg,
		dstPtrs: make([][]int32, len(fanouts)),
		srcBufs: make([][]int32, len(fanouts)),
	}
	s.picker = newPicker(cfg.Dedup, cfg.Reuse)
	if cfg.Reuse != ReuseFresh {
		s.mapper = s.newMapper()
	}
	return s
}

// Config returns the design-space configuration of this sampler.
func (s *Sampler) Config() Config { return s.cfg }

func (s *Sampler) newMapper() localMapper {
	switch s.cfg.IDMap {
	case IDMapStd:
		return &stdMapper{}
	case IDMapFlat:
		return &flatMapper{}
	case IDMapFlatPre:
		return &flatMapper{presize: true}
	case IDMapDirect:
		return newDirectMapper(s.G.N)
	}
	panic("sampler: unknown idmap kind")
}

// expectedNodes estimates the expanded-neighborhood size for pre-sizing:
// batch × Π(fanout+1), capped at the graph size.
func (s *Sampler) expectedNodes(batch int) int {
	est := batch
	for _, f := range s.Fanouts {
		if est > int(s.G.N) {
			break
		}
		est *= f + 1
	}
	if est > int(s.G.N) {
		est = int(s.G.N)
	}
	return est
}

// Sample draws the MFG for the given seed nodes. Seeds must be distinct and
// in range. Randomness comes from r, so identical (seed set, RNG state)
// pairs reproduce identical MFGs.
func (s *Sampler) Sample(r *rng.Rand, seeds []int32) *mfg.MFG {
	L := len(s.Fanouts)
	expected := s.expectedNodes(len(seeds))

	mapper := s.mapper
	if s.cfg.Reuse == ReuseFresh || mapper == nil {
		mapper = s.newMapper()
	}
	mapper.Reset(expected)

	var nodeIDs []int32
	if s.cfg.Reuse == ReusePooledAll && s.nodeIDs != nil {
		nodeIDs = s.nodeIDs[:0]
	} else {
		nodeIDs = make([]int32, 0, expected)
	}

	for _, v := range seeds {
		if v < 0 || v >= s.G.N {
			panic(fmt.Sprintf("sampler: seed %d out of range", v))
		}
		l := mapper.GetOrAssign(v)
		if int(l) != len(nodeIDs) {
			panic(fmt.Sprintf("sampler: duplicate seed %d", v))
		}
		nodeIDs = append(nodeIDs, v)
	}

	blocks := make([]mfg.Block, L)
	frontier := int32(len(seeds))

	for hop := 0; hop < L; hop++ {
		blockIdx := L - 1 - hop       // innermost hop fills the last block
		fanout := s.Fanouts[blockIdx] // so hop 0 uses Fanouts[L-1]
		numDst := frontier

		dstPtr := s.grabDstPtr(hop, int(numDst)+1)
		src := s.grabSrc(hop)

		if s.cfg.Build == BuildFused {
			for v := int32(0); v < numDst; v++ {
				dstPtr[v] = int32(len(src))
				ns := s.G.Neighbors(nodeIDs[v])
				s.picker.Pick(r, ns, fanout, func(g int32) {
					l := mapper.GetOrAssign(g)
					if int(l) == len(nodeIDs) {
						nodeIDs = append(nodeIDs, g)
					}
					src = append(src, l)
				})
			}
			dstPtr[numDst] = int32(len(src))
		} else {
			// Phase 1: sample global IDs into a flat buffer.
			buf := s.phaseBuf[:0]
			cnt := s.grabPhaseCnt(int(numDst))
			for v := int32(0); v < numDst; v++ {
				before := len(buf)
				ns := s.G.Neighbors(nodeIDs[v])
				s.picker.Pick(r, ns, fanout, func(g int32) {
					buf = append(buf, g)
				})
				cnt[v] = int32(len(buf) - before)
			}
			// Phase 2: map globals to locals and build the block.
			pos := 0
			for v := int32(0); v < numDst; v++ {
				dstPtr[v] = int32(len(src))
				for e := int32(0); e < cnt[v]; e++ {
					g := buf[pos]
					pos++
					l := mapper.GetOrAssign(g)
					if int(l) == len(nodeIDs) {
						nodeIDs = append(nodeIDs, g)
					}
					src = append(src, l)
				}
			}
			dstPtr[numDst] = int32(len(src))
			if s.cfg.Reuse == ReusePooledAll {
				s.phaseBuf = buf
			}
		}

		frontier = mapper.Len()
		blocks[blockIdx] = mfg.Block{
			DstPtr: dstPtr,
			Src:    src,
			NumDst: numDst,
			NumSrc: frontier,
		}
		if s.cfg.Reuse == ReusePooledAll {
			s.dstPtrs[hop] = dstPtr
			s.srcBufs[hop] = src
		}
	}

	if s.cfg.Reuse == ReusePooledAll {
		s.nodeIDs = nodeIDs
	}
	if s.cfg.Reuse != ReuseFresh {
		s.mapper = mapper
	}
	return &mfg.MFG{Blocks: blocks, NodeIDs: nodeIDs, Batch: int32(len(seeds))}
}

func (s *Sampler) grabDstPtr(hop, n int) []int32 {
	if s.cfg.Reuse == ReusePooledAll && cap(s.dstPtrs[hop]) >= n {
		return s.dstPtrs[hop][:n]
	}
	return make([]int32, n)
}

func (s *Sampler) grabSrc(hop int) []int32 {
	if s.cfg.Reuse == ReusePooledAll && s.srcBufs[hop] != nil {
		return s.srcBufs[hop][:0]
	}
	return make([]int32, 0, 256)
}

func (s *Sampler) grabPhaseCnt(n int) []int32 {
	if s.cfg.Reuse == ReusePooledAll && cap(s.phaseCnt) >= n {
		s.phaseCnt = s.phaseCnt[:n]
		return s.phaseCnt
	}
	s.phaseCnt = make([]int32, n)
	return s.phaseCnt
}
