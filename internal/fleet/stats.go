package fleet

import (
	"salient/internal/event"
	"salient/internal/serve"
)

// Stats is the fleet-aggregate view: replica counters summed, the fleet's
// own admission/latency accounting, per-replica watermarks, and the raw
// per-replica snapshots for drill-down. Counter fields are exact sums of
// PerReplica (the aggregation test pins that); Latency is measured at the
// fleet boundary — submit to answer through routing, admission and the
// result cache — so it is the latency a client of the fleet observes, not
// a merge of replica-local distributions.
type Stats struct {
	Replicas int

	// Sums over PerReplica.
	Submitted     int64
	Rejected      int64
	Served        int64
	Batches       int64
	DeadlineSheds int64

	// Fleet-boundary latency (includes result-cache hits, excludes shed
	// requests — they have no answer to time).
	Latency event.Summary

	// Router admission refusals by reason (requests that never reached a
	// replica, except ShedCapacities which attributes replica
	// saturations).
	ShedDeadlines  int64
	ShedPriorities int64
	ShedCapacities int64

	// Routed counts successfully answered requests per replica — the
	// affinity balance view.
	Routed []int64

	// Versions are the per-replica graph watermarks; Min/MaxVersion
	// bracket the fleet's current skew.
	Versions   []uint64
	MinVersion uint64
	MaxVersion uint64

	// Result is the versioned result cache's traffic (zero when disabled).
	Result ResultStats

	// Cache sums over replicas: device feature-cache and historical
	// embedding-cache traffic, and the transfer bill.
	CacheLookups     int64
	CacheHits        int64
	EmbLookups       int64
	EmbHits          int64
	BytesTransferred int64
	BytesSaved       int64

	// PerReplica holds each replica's own snapshot, index-aligned with
	// Routed and Versions.
	PerReplica []serve.Stats
}

// TotalSheds sums the router's admission refusals.
func (s Stats) TotalSheds() int64 {
	return s.ShedDeadlines + s.ShedPriorities + s.ShedCapacities
}

// CombinedCacheHitRate is the fraction of all cache consultations
// (feature rows + historical embeddings, fleet-wide) that hit — the
// single number the affinity-vs-random comparison turns on: hash routing
// concentrates each key slice's traffic on one replica's caches, random
// routing dilutes it N ways.
func (s Stats) CombinedCacheHitRate() float64 {
	lookups := s.CacheLookups + s.EmbLookups
	if lookups == 0 {
		return 0
	}
	return float64(s.CacheHits+s.EmbHits) / float64(lookups)
}

// Skew returns MaxVersion - MinVersion, the fleet's current version
// spread.
func (s Stats) Skew() uint64 { return s.MaxVersion - s.MinVersion }

// Stats snapshots the fleet: every replica's stats (summed and kept), the
// router's own accounting, and the version watermarks.
func (f *Fleet) Stats() Stats {
	s := Stats{Replicas: len(f.reps)}
	for _, rep := range f.reps {
		rs := rep.srv.Stats()
		s.PerReplica = append(s.PerReplica, rs)
		s.Submitted += rs.Submitted
		s.Rejected += rs.Rejected
		s.Served += rs.Served
		s.Batches += rs.Batches
		s.DeadlineSheds += rs.DeadlineSheds
		s.CacheLookups += rs.CacheLookups
		s.CacheHits += rs.CacheHits
		s.EmbLookups += rs.EmbLookups
		s.EmbHits += rs.EmbHits
		s.BytesTransferred += rs.BytesTransferred
		s.BytesSaved += rs.BytesSaved
		v := rep.version.Load()
		s.Versions = append(s.Versions, v)
		if v > s.MaxVersion {
			s.MaxVersion = v
		}
		if len(s.Versions) == 1 || v < s.MinVersion {
			s.MinVersion = v
		}
	}
	if f.results != nil {
		s.Result = f.results.Stats()
	}
	f.statsMu.Lock()
	s.Latency = f.latency.Summarize()
	s.ShedDeadlines = f.sheds[ShedDeadline]
	s.ShedPriorities = f.sheds[ShedPriority]
	s.ShedCapacities = f.sheds[ShedCapacity]
	s.Routed = append([]int64(nil), f.routed...)
	f.statsMu.Unlock()
	return s
}
