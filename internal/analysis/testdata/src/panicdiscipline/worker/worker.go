// Package worker is a panicdiscipline golden-test fixture: its import path
// contains internal/, so library panics need an error return or a
// documented contract.
package worker

import "errors"

// ErrEmpty reports an empty work list.
var ErrEmpty = errors.New("worker: empty work list")

// First panics on bad input instead of returning an error.
func First(xs []int32) int32 {
	if len(xs) == 0 {
		panic("worker: empty work list") // want "panic in library code"
	}
	return xs[0]
}

// FirstChecked returns the error instead: legal.
func FirstChecked(xs []int32) (int32, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	return xs[0], nil
}

// mustIndex documents its panic as an invariant contract.
func mustIndex(i, n int) int {
	if i < 0 || i >= n {
		panic("worker: index out of range") //lint:allow panicdiscipline fixture for the suppression path; documented caller contract
	}
	return i
}

// Pick exercises mustIndex so it is not dead code.
func Pick(xs []int32, i int) int32 {
	return xs[mustIndex(i, len(xs))]
}
