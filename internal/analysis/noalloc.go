package analysis

import (
	"go/ast"
	"go/types"

	goanalysis "golang.org/x/tools/go/analysis"
)

// NoAlloc checks functions annotated `//salient:noalloc` — the
// sampler→slicing→decode hot path whose 0 allocs/batch steady state the
// AllocsPerRun CI gate measures — for constructs that allocate per call:
//
//   - make/new and map/slice/pointer composite literals, unless inside a
//     growth guard (an if whose condition tests cap/len or nil), the
//     amortized-zero grow-on-demand idiom;
//   - append outside the self-append form `x = append(x, ...)` (self-append
//     into a recycled arena buffer is amortized zero; append into a fresh
//     destination allocates every call);
//   - closures (function literals capture at creation);
//   - fmt calls, string concatenation, and string<->[]byte/[]rune
//     conversions;
//   - go and defer statements.
//
// Failure paths are exempt: arguments of panic(...) and the entirety of
// return statements in error-returning functions only execute when a batch
// is rejected, which the allocation gate never measures.
//
// The check is intentionally non-transitive — callees are opaque — so the
// static annotation and the dynamic AllocsPerRun gate cross-check each
// other: the analyzer catches the construct the benchmark would only
// surface as a regressed counter, and the benchmark catches allocating
// callees the analyzer cannot see.
var NoAlloc = &goanalysis.Analyzer{
	Name: "noalloc",
	Doc:  "forbid steady-state-allocating constructs in functions annotated //salient:noalloc",
	Run:  runNoAlloc,
}

func runNoAlloc(pass *goanalysis.Pass) (interface{}, error) {
	idx := buildAllowIndex(pass)
	for _, fd := range noallocFuncs(pass) {
		if fd.Body == nil {
			continue
		}
		c := &noallocChecker{pass: pass, idx: idx, errReturn: hasErrorResult(pass, fd)}
		c.stmt(fd.Body, false)
	}
	return nil, nil
}

// hasErrorResult reports whether any of the function's results implements
// the error interface.
func hasErrorResult(pass *goanalysis.Pass, fd *ast.FuncDecl) bool {
	sig, ok := pass.TypesInfo.Defs[fd.Name].Type().(*types.Signature)
	if !ok {
		return false
	}
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	for i := 0; i < sig.Results().Len(); i++ {
		if types.Implements(sig.Results().At(i).Type(), errIface) {
			return true
		}
	}
	return false
}

type noallocChecker struct {
	pass      *goanalysis.Pass
	idx       *allowIndex
	errReturn bool
}

func (c *noallocChecker) reportf(n ast.Node, format string, args ...interface{}) {
	report(c.pass, c.idx, n.Pos(), format, args...)
}

// stmt walks a statement. guarded is true inside the body of a growth
// guard, where one-time or amortized allocation is the point.
func (c *noallocChecker) stmt(s ast.Stmt, guarded bool) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			c.stmt(st, guarded)
		}
	case *ast.IfStmt:
		c.stmt(s.Init, guarded)
		c.expr(s.Cond, guarded)
		c.stmt(s.Body, guarded || isGrowthGuard(s.Cond))
		c.stmt(s.Else, guarded)
	case *ast.ForStmt:
		c.stmt(s.Init, guarded)
		if s.Cond != nil {
			c.expr(s.Cond, guarded)
		}
		c.stmt(s.Post, guarded)
		c.stmt(s.Body, guarded)
	case *ast.RangeStmt:
		c.expr(s.X, guarded)
		c.stmt(s.Body, guarded)
	case *ast.ReturnStmt:
		if c.errReturn {
			return // failure path: executes once per rejected batch, not per row
		}
		for _, r := range s.Results {
			c.expr(r, guarded)
		}
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok && isBuiltin(c.pass, call.Fun, "panic") {
			return // failure path
		}
		c.expr(s.X, guarded)
	case *ast.AssignStmt:
		for i, rhs := range s.Rhs {
			if call, ok := rhs.(*ast.CallExpr); ok && isBuiltin(c.pass, call.Fun, "append") &&
				i < len(s.Lhs) && types.ExprString(s.Lhs[i]) == types.ExprString(call.Args[0]) {
				// Self-append x = append(x, ...): amortized zero over a
				// recycled buffer. Still check the appended operands.
				for _, a := range call.Args[1:] {
					c.expr(a, guarded)
				}
				continue
			}
			c.expr(rhs, guarded)
		}
		for _, lhs := range s.Lhs {
			c.expr(lhs, guarded)
		}
	case *ast.GoStmt:
		c.reportf(s, "go statement in //salient:noalloc function: spawning a goroutine allocates")
	case *ast.DeferStmt:
		c.reportf(s, "defer in //salient:noalloc function: deferred calls may allocate; restructure the hot path")
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.expr(v, guarded)
					}
				}
			}
		}
	case *ast.SwitchStmt:
		c.stmt(s.Init, guarded)
		if s.Tag != nil {
			c.expr(s.Tag, guarded)
		}
		c.stmt(s.Body, guarded)
	case *ast.TypeSwitchStmt:
		c.stmt(s.Init, guarded)
		c.stmt(s.Assign, guarded)
		c.stmt(s.Body, guarded)
	case *ast.SelectStmt:
		c.stmt(s.Body, guarded)
	case *ast.CaseClause:
		for _, e := range s.List {
			c.expr(e, guarded)
		}
		for _, st := range s.Body {
			c.stmt(st, guarded)
		}
	case *ast.CommClause:
		c.stmt(s.Comm, guarded)
		for _, st := range s.Body {
			c.stmt(st, guarded)
		}
	case *ast.SendStmt:
		c.expr(s.Chan, guarded)
		c.expr(s.Value, guarded)
	case *ast.LabeledStmt:
		c.stmt(s.Stmt, guarded)
	case *ast.IncDecStmt:
		c.expr(s.X, guarded)
	case *ast.BranchStmt, *ast.EmptyStmt:
	}
}

// expr walks an expression, reporting allocating constructs.
func (c *noallocChecker) expr(e ast.Expr, guarded bool) {
	switch e := e.(type) {
	case nil:
	case *ast.CallExpr:
		c.call(e, guarded)
	case *ast.FuncLit:
		c.reportf(e, "closure in //salient:noalloc function: function literals allocate at creation; pre-bind them at construction time")
	case *ast.CompositeLit:
		switch c.pass.TypesInfo.TypeOf(e).Underlying().(type) {
		case *types.Map, *types.Slice:
			if !guarded {
				c.reportf(e, "map/slice literal allocates in //salient:noalloc function")
			}
		}
		for _, el := range e.Elts {
			c.expr(el, guarded)
		}
	case *ast.UnaryExpr:
		if cl, ok := e.X.(*ast.CompositeLit); ok && e.Op.String() == "&" {
			if !guarded {
				c.reportf(e, "pointer composite literal allocates in //salient:noalloc function")
			}
			for _, el := range cl.Elts {
				c.expr(el, guarded)
			}
			return
		}
		c.expr(e.X, guarded)
	case *ast.BinaryExpr:
		if e.Op.String() == "+" {
			if t, ok := c.pass.TypesInfo.TypeOf(e).Underlying().(*types.Basic); ok && t.Info()&types.IsString != 0 {
				c.reportf(e, "string concatenation allocates in //salient:noalloc function")
			}
		}
		c.expr(e.X, guarded)
		c.expr(e.Y, guarded)
	case *ast.ParenExpr:
		c.expr(e.X, guarded)
	case *ast.StarExpr:
		c.expr(e.X, guarded)
	case *ast.SelectorExpr:
		c.expr(e.X, guarded)
	case *ast.IndexExpr:
		c.expr(e.X, guarded)
		c.expr(e.Index, guarded)
	case *ast.SliceExpr:
		c.expr(e.X, guarded)
		c.expr(e.Low, guarded)
		c.expr(e.High, guarded)
		c.expr(e.Max, guarded)
	case *ast.TypeAssertExpr:
		c.expr(e.X, guarded)
	case *ast.KeyValueExpr:
		c.expr(e.Value, guarded)
	}
}

// call handles calls: allocating builtins, conversions, and fmt.
func (c *noallocChecker) call(call *ast.CallExpr, guarded bool) {
	switch {
	case isBuiltin(c.pass, call.Fun, "make"), isBuiltin(c.pass, call.Fun, "new"):
		if !guarded {
			c.reportf(call, "%s allocates per call in //salient:noalloc function: guard growth with a cap/len/nil check", call.Fun.(*ast.Ident).Name)
		}
	case isBuiltin(c.pass, call.Fun, "append"):
		// The legal self-append form is intercepted at the AssignStmt; an
		// append reaching here feeds a fresh destination.
		c.reportf(call, "append outside the `x = append(x, ...)` self-append form may grow a fresh slice per call in //salient:noalloc function")
	case c.isConversion(call):
		c.checkConversion(call, guarded)
	case isPkgCall(c.pass, call, "fmt"):
		c.reportf(call, "fmt call allocates in //salient:noalloc function (outside panic/error paths)")
	}
	for _, a := range call.Args {
		c.expr(a, guarded)
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		c.expr(sel.X, guarded)
	}
}

func (c *noallocChecker) isConversion(call *ast.CallExpr) bool {
	tv, ok := c.pass.TypesInfo.Types[call.Fun]
	return ok && tv.IsType()
}

// checkConversion flags conversions that copy (string <-> byte/rune slices)
// or box (concrete value into interface type).
func (c *noallocChecker) checkConversion(call *ast.CallExpr, guarded bool) {
	if guarded || len(call.Args) != 1 {
		return
	}
	dst := c.pass.TypesInfo.TypeOf(call.Fun).Underlying()
	src := c.pass.TypesInfo.TypeOf(call.Args[0])
	if src == nil {
		return
	}
	dstStr := isString(dst)
	srcStr := isString(src.Underlying())
	_, dstSlice := dst.(*types.Slice)
	_, srcSlice := src.Underlying().(*types.Slice)
	switch {
	case dstStr && srcSlice, srcStr && dstSlice:
		c.reportf(call, "string/slice conversion copies per call in //salient:noalloc function")
	}
	if iface, ok := dst.(*types.Interface); ok && !iface.Empty() || isAnyInterface(dst) {
		if _, srcIface := src.Underlying().(*types.Interface); !srcIface {
			c.reportf(call, "conversion to interface boxes its operand in //salient:noalloc function")
		}
	}
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isAnyInterface(t types.Type) bool {
	iface, ok := t.(*types.Interface)
	return ok && iface.Empty()
}

// isGrowthGuard reports whether an if condition is a growth/lazy-init
// guard: it compares cap or len, or tests nil.
func isGrowthGuard(cond ast.Expr) bool {
	guard := false
	ast.Inspect(cond, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && (id.Name == "cap" || id.Name == "len") {
				guard = true
			}
		case *ast.Ident:
			if n.Name == "nil" {
				guard = true
			}
		}
		return !guard
	})
	return guard
}

// isPkgCall reports whether call is a selector call into the named package.
func isPkgCall(pass *goanalysis.Pass, call *ast.CallExpr, pkg string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == pkg
}
