package dataset

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"salient/internal/graph"
	"salient/internal/half"
	"salient/internal/tensor"
)

// Binary dataset container: a fixed little-endian layout with a magic
// header, section lengths, and a trailing CRC32 of everything after the
// magic. The float32 master features are not stored — they are recovered by
// widening the half-precision features, which is the on-host representation
// anyway (paper §3, optimization iii).
const (
	ioMagic   = "SALNTDS1"
	maxstring = 1 << 10
	maxEntity = int64(1) << 34 // sanity cap on section lengths
)

// Save writes the dataset to w.
func (d *Dataset) Save(w io.Writer) error {
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, crc))
	if _, err := io.WriteString(bw, ioMagic); err != nil {
		return err
	}
	le := func(vs ...any) error {
		for _, v := range vs {
			if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		return nil
	}
	if err := le(int64(len(d.Name))); err != nil {
		return err
	}
	if _, err := io.WriteString(bw, d.Name); err != nil {
		return err
	}
	if err := le(
		d.G.N, int32(d.NumClasses), int32(d.FeatDim),
		int64(len(d.G.Ptr)), int64(len(d.G.Adj)), //lint:allow topologyseam serializer owns the raw representation; byte-exact round-trip needs Ptr/Adj
		int64(len(d.FeatHalf)), int64(len(d.Labels)),
		int64(len(d.Train)), int64(len(d.Val)), int64(len(d.Test)),
	); err != nil {
		return err
	}
	if err := le(d.G.Ptr, d.G.Adj, d.FeatHalf, d.Labels, d.Train, d.Val, d.Test); err != nil { //lint:allow topologyseam serializer owns the raw representation; byte-exact round-trip needs Ptr/Adj
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	// CRC over everything written so far (including magic), appended raw.
	return binary.Write(w, binary.LittleEndian, crc.Sum32())
}

// LoadFrom reads a dataset written by Save, verifying the checksum.
func LoadFrom(r io.Reader) (*Dataset, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("dataset: read: %w", err)
	}
	if len(raw) < len(ioMagic)+4 {
		return nil, fmt.Errorf("dataset: truncated container (%d bytes)", len(raw))
	}
	payload, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if stored := binary.LittleEndian.Uint32(tail); stored != crc32.ChecksumIEEE(payload) {
		return nil, fmt.Errorf("dataset: checksum mismatch (stored %08x, computed %08x)",
			stored, crc32.ChecksumIEEE(payload))
	}
	br := bytes.NewReader(payload)
	magic := make([]byte, len(ioMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("dataset: read magic: %w", err)
	}
	if string(magic) != ioMagic {
		return nil, fmt.Errorf("dataset: bad magic %q", magic)
	}
	le := func(vs ...any) error {
		for _, v := range vs {
			if err := binary.Read(br, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		return nil
	}
	var nameLen int64
	if err := le(&nameLen); err != nil {
		return nil, err
	}
	if nameLen < 0 || nameLen > maxstring {
		return nil, fmt.Errorf("dataset: unreasonable name length %d", nameLen)
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBuf); err != nil {
		return nil, err
	}

	var n, classes, featDim int32
	var lens [7]int64
	if err := le(&n, &classes, &featDim); err != nil {
		return nil, err
	}
	for i := range lens {
		if err := le(&lens[i]); err != nil {
			return nil, err
		}
		if lens[i] < 0 || lens[i] > maxEntity {
			return nil, fmt.Errorf("dataset: unreasonable section length %d", lens[i])
		}
	}
	if lens[0] != int64(n)+1 {
		return nil, fmt.Errorf("dataset: ptr length %d != N+1", lens[0])
	}
	if lens[2] != int64(n)*int64(featDim) {
		return nil, fmt.Errorf("dataset: feature length %d != N*dim", lens[2])
	}
	if lens[3] != int64(n) {
		return nil, fmt.Errorf("dataset: label length %d != N", lens[3])
	}

	d := &Dataset{
		Name:       string(nameBuf),
		NumClasses: int(classes),
		FeatDim:    int(featDim),
		G:          &graph.CSR{N: n, Ptr: make([]int64, lens[0]), Adj: make([]int32, lens[1])},
		FeatHalf:   make([]half.Float16, lens[2]),
		Labels:     make([]int32, lens[3]),
		Train:      make([]int32, lens[4]),
		Val:        make([]int32, lens[5]),
		Test:       make([]int32, lens[6]),
	}
	if err := le(d.G.Ptr, d.G.Adj, d.FeatHalf, d.Labels, d.Train, d.Val, d.Test); err != nil { //lint:allow topologyseam deserializer rebuilds the raw representation before Validate gates it
		return nil, err
	}
	if br.Len() != 0 {
		return nil, fmt.Errorf("dataset: %d trailing bytes after sections", br.Len())
	}
	if err := d.G.Validate(); err != nil {
		return nil, fmt.Errorf("dataset: loaded graph invalid: %w", err)
	}
	// Recover the float32 master copy from the half-precision features.
	d.Feat = tensor.New(int(n), int(featDim))
	half.DecodeSlice(d.Feat.Data, d.FeatHalf)
	return d, nil
}

// SaveFile writes the dataset to path (atomically via a temp file).
func (d *Dataset) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := d.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile reads a dataset from path.
func LoadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadFrom(f)
}
