package cache

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

// sortTopK is the oracle for topKSelect: full sort under the same
// (score desc, id asc) order.
func sortTopK(ids []int32, score []int64, k int) []int32 {
	type entry struct {
		id int32
		sc int64
	}
	es := make([]entry, len(ids))
	for i := range ids {
		es[i] = entry{ids[i], score[i]}
	}
	sort.Slice(es, func(a, b int) bool {
		if es[a].sc != es[b].sc {
			return es[a].sc > es[b].sc
		}
		return es[a].id < es[b].id
	})
	out := make([]int32, 0, k)
	for i := 0; i < k && i < len(es); i++ {
		out = append(out, es[i].id)
	}
	return out
}

func asSet(ids []int32) map[int32]bool {
	m := make(map[int32]bool, len(ids))
	for _, v := range ids {
		m[v] = true
	}
	return m
}

func TestTopKSelectMatchesSortOracle(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(64)
		ids := make([]int32, n)
		score := make([]int64, n)
		for i := range ids {
			ids[i] = int32(i)
			score[i] = int64(r.Intn(8)) // many ties
		}
		r.Shuffle(n, func(a, b int) {
			ids[a], ids[b] = ids[b], ids[a]
			score[a], score[b] = score[b], score[a]
		})
		k := r.Intn(n + 1)
		want := asSet(sortTopK(ids, score, k))
		topKSelect(ids, score, k)
		got := asSet(ids[:k])
		if len(got) != len(want) {
			t.Fatalf("trial %d: k=%d got %d ids, want %d", trial, k, len(got), len(want))
		}
		for v := range want {
			if !got[v] {
				t.Fatalf("trial %d: k=%d missing id %d from selection", trial, k, v)
			}
		}
	}
}

func TestSketchObserveAndCount(t *testing.T) {
	s := NewSketch(8)
	if s.Len() != 8 {
		t.Fatalf("Len = %d, want 8", s.Len())
	}
	for i := 0; i < 5; i++ {
		s.Observe(3)
	}
	s.Observe(0)
	s.Observe(-1) // ignored
	s.Observe(8)  // ignored
	if got := s.Count(3); got != 5 {
		t.Fatalf("Count(3) = %d, want 5", got)
	}
	if got := s.Count(0); got != 1 {
		t.Fatalf("Count(0) = %d, want 1", got)
	}
	if got := s.Count(-1); got != 0 {
		t.Fatalf("Count(-1) = %d, want 0", got)
	}
	if got := s.Observations(); got != 6 {
		t.Fatalf("Observations = %d, want 6", got)
	}
	s.Decay()
	if got := s.Count(3); got != 2 {
		t.Fatalf("after Decay, Count(3) = %d, want 2", got)
	}
	if got := s.Count(0); got != 0 {
		t.Fatalf("after Decay, Count(0) = %d, want 0", got)
	}
	if got := s.Observations(); got != 2 {
		t.Fatalf("after Decay, Observations = %d, want 2", got)
	}
}

func TestSketchConcurrentObserveExact(t *testing.T) {
	const workers, perWorker = 8, 1000
	s := NewSketch(4)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				s.Observe(int32(w % 4))
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for v := int32(0); v < 4; v++ {
		total += int64(s.Count(v))
	}
	if total != workers*perWorker {
		t.Fatalf("total counts = %d, want %d (CAS increments must not lose updates)", total, workers*perWorker)
	}
	if s.Observations() != workers*perWorker {
		t.Fatalf("Observations = %d, want %d", s.Observations(), workers*perWorker)
	}
}

// TestPlanVIPBudgetNeverExceeded: under heterogeneous row costs the
// admitted set's total bytes never exceed the budget, for random inputs.
func TestPlanVIPBudgetNeverExceeded(t *testing.T) {
	f := func(rawFreq []uint16, rawBytes []uint8, rawBudget uint16) bool {
		n := len(rawFreq)
		if len(rawBytes) < n {
			n = len(rawBytes)
		}
		ids := make([]int32, n)
		freq := make([]int64, n)
		rowBytes := make([]int64, n)
		cost := make(map[int32]int64, n)
		for i := 0; i < n; i++ {
			ids[i] = int32(i)
			freq[i] = int64(rawFreq[i])
			rowBytes[i] = int64(rawBytes[i]) // may be 0: skipped by planner
			cost[ids[i]] = rowBytes[i]
		}
		budget := int64(rawBudget)
		got := PlanVIP(ids, freq, rowBytes, budget)
		var used int64
		seen := make(map[int32]bool, len(got))
		for _, v := range got {
			if seen[v] {
				return false // duplicates would double-pin a row
			}
			seen[v] = true
			used += cost[v]
		}
		return used <= budget
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPlanVIPAdmissionMonotonicity: raising one candidate's frequency never
// evicts it from the admitted set — if it was in, it stays in. (Note the
// dual is false by design: a larger budget can admit one expensive hot row
// in place of several cheap ones, so admission counts are not monotone in
// budget; bytes-within-budget is the invariant, pinned above.)
func TestPlanVIPAdmissionMonotonicity(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(24)
		ids := make([]int32, n)
		freq := make([]int64, n)
		rowBytes := make([]int64, n)
		for i := 0; i < n; i++ {
			ids[i] = int32(i)
			freq[i] = int64(r.Intn(50))
			rowBytes[i] = int64(1 + r.Intn(16))
		}
		budget := int64(1 + r.Intn(64))
		base := asSet(PlanVIP(ids, freq, rowBytes, budget))

		// Bump one admitted candidate's frequency: must stay admitted.
		for _, v := range ids {
			if !base[v] {
				continue
			}
			freq2 := append([]int64(nil), freq...)
			freq2[v] += int64(1 + r.Intn(100))
			after := asSet(PlanVIP(ids, freq2, rowBytes, budget))
			if !after[v] {
				t.Fatalf("trial %d: id %d dropped after its frequency rose", trial, v)
			}
			break
		}
	}
}

// TestPlanVIPCostAware: with equal frequencies, cheap rows fill the budget
// that one expensive row would blow; with unequal frequencies, the hottest
// rows win while they fit.
func TestPlanVIPCostAware(t *testing.T) {
	// Rows 0..3 are int8-narrow (4 bytes); row 4 is fp32-wide (16 bytes).
	ids := []int32{0, 1, 2, 3, 4}
	rowBytes := []int64{4, 4, 4, 4, 16}

	// Same frequency everywhere: ids tie-break ascending, all four narrow
	// rows fit a 16-byte budget; the wide row does not join them.
	got := asSet(PlanVIP(ids, []int64{5, 5, 5, 5, 5}, rowBytes, 16))
	for v := int32(0); v < 4; v++ {
		if !got[v] {
			t.Fatalf("narrow row %d not admitted under equal frequency", v)
		}
	}
	if got[4] {
		t.Fatalf("wide row admitted beyond budget")
	}

	// Wide row much hotter: it takes the whole budget, then cheaper colder
	// rows that still fit are admitted after it.
	got = asSet(PlanVIP(ids, []int64{1, 1, 1, 1, 100}, rowBytes, 20))
	if !got[4] {
		t.Fatalf("hottest (wide) row not admitted")
	}
	if !got[0] {
		t.Fatalf("remaining 4 bytes should admit the cheapest tie-break row 0")
	}
	if got[1] || got[2] || got[3] {
		t.Fatalf("over-admission past the 20-byte budget: %v", got)
	}
}

func TestPlanVIPUnitCostMatchesTopK(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(40)
		ids := make([]int32, n)
		freq := make([]int64, n)
		for i := 0; i < n; i++ {
			ids[i] = int32(i)
			freq[i] = int64(r.Intn(6))
		}
		k := int64(r.Intn(n + 2))
		got := asSet(PlanVIP(ids, freq, nil, k))
		want := asSet(sortTopK(ids, freq, int(k)))
		if len(got) != len(want) {
			t.Fatalf("trial %d: size %d want %d", trial, len(got), len(want))
		}
		for v := range want {
			if !got[v] {
				t.Fatalf("trial %d: missing %d", trial, v)
			}
		}
	}
}

func TestVIPCachePlanFollowsTraffic(t *testing.T) {
	g := lineGraph(t, 16)
	c, err := New(g, 2, VIP)
	if err != nil {
		t.Fatal(err)
	}
	// Cold: no traffic, nothing resident.
	if c.Len() != 0 {
		t.Fatalf("cold VIP cache has %d resident rows, want 0", c.Len())
	}
	// Hammer nodes 5 and 9; brush node 2 once.
	for i := 0; i < 10; i++ {
		c.Touch(5)
		c.Touch(9)
	}
	c.Touch(2)
	c.Rebuild(g)
	if !c.Resident(5) || !c.Resident(9) {
		t.Fatalf("hot nodes not resident after rebuild: 5=%v 9=%v", c.Resident(5), c.Resident(9))
	}
	if c.Resident(2) {
		t.Fatalf("cold node 2 resident with capacity 2")
	}
	// Misses on non-resident rows must not insert (placement-only policy).
	if c.Touch(3) {
		t.Fatalf("unexpected hit on node 3")
	}
	if c.Resident(3) {
		t.Fatalf("VIP inserted on miss like LRU")
	}
	// Budget never exceeded.
	if c.Len() > c.Capacity() {
		t.Fatalf("resident %d > capacity %d", c.Len(), c.Capacity())
	}
}

func TestVIPCacheDecayShiftsPlacement(t *testing.T) {
	g := lineGraph(t, 8)
	c, err := New(g, 1, VIP)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		c.Touch(1)
	}
	c.Rebuild(g)
	if !c.Resident(1) {
		t.Fatalf("node 1 should be resident")
	}
	// Traffic shifts to node 6. Each Rebuild halves old counts, so after a
	// few refreshes node 6 overtakes node 1.
	for r := 0; r < 4; r++ {
		for i := 0; i < 8; i++ {
			c.Touch(6)
		}
		c.Rebuild(g)
	}
	if !c.Resident(6) {
		t.Fatalf("placement did not follow shifted traffic to node 6")
	}
	if c.Resident(1) {
		t.Fatalf("stale hot node 1 still resident with capacity 1")
	}
}

func TestPerShardBudgets(t *testing.T) {
	g := lineGraph(t, 12)
	const parts = 3
	partOf := func(v int32) int32 { return v % parts }
	c, err := NewWithOptions(g, Options{
		Capacity: 5, // 2 + 2 + 1 across shards 0,1,2
		Policy:   VIP,
		PartOf:   partOf,
		Parts:    parts,
	})
	if err != nil {
		t.Fatal(err)
	}
	// All traffic lands on shard-0 nodes (0, 3, 6, 9): without per-shard
	// budgets they'd take 4 of 5 slots; with them, shard 0 gets exactly 2.
	for i := 0; i < 20; i++ {
		c.Touch(0)
		c.Touch(3)
		c.Touch(6)
		c.Touch(9)
	}
	c.Touch(1) // shard 1
	c.Touch(2) // shard 2
	c.Rebuild(g)
	perShard := map[int32]int{}
	for v := int32(0); v < g.NumNodes(); v++ {
		if c.Resident(v) {
			perShard[partOf(v)]++
		}
	}
	if perShard[0] != 2 {
		t.Fatalf("shard 0 resident = %d, want exactly its budget 2 (got map %v)", perShard[0], perShard)
	}
	if perShard[1] != 1 || perShard[2] != 1 {
		t.Fatalf("cold shards should hold their observed rows: %v", perShard)
	}
	if c.Len() > c.Capacity() {
		t.Fatalf("resident %d exceeds capacity %d", c.Len(), c.Capacity())
	}
}

func TestPerShardBudgetsStaticDegree(t *testing.T) {
	// Star: node 0 is the hub. With per-shard budgets over 2 shards
	// (even/odd), the hub takes shard 0's slot and shard 1 still gets its
	// own best node instead of being starved by global ranking.
	g := starGraph(t, 6) // nodes 0..6, node 0 has degree 6, leaves degree 1
	c, err := NewWithOptions(g, Options{
		Capacity: 2,
		Policy:   StaticDegree,
		PartOf:   func(v int32) int32 { return v % 2 },
		Parts:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Resident(0) {
		t.Fatalf("hub not resident")
	}
	if !c.Resident(1) {
		t.Fatalf("shard 1's best node (lowest-id leaf) not resident; per-shard budget not honored")
	}
}
