package ddp

import (
	"fmt"
	"sync"
	"time"

	"salient/internal/dataset"
	"salient/internal/graph"
	"salient/internal/nn"
	"salient/internal/prep"
	"salient/internal/sampler"
	"salient/internal/store"
	"salient/internal/train"
)

// StepsFor returns the number of synchronized gradient steps an epoch of nb
// global batches takes on R replicas — the even split of the global batch
// count shared by the cost-model simulators and the executing Trainer.
func StepsFor(nb, replicas int) int {
	return (nb + replicas - 1) / replicas
}

// ShardSeeds returns replica r's deterministic shard of the globally
// shuffled epoch permutation: the concatenation of per-replica batches
// (consecutive chunks of batchSize seeds) r, r+R, r+2R, … Step s of the
// epoch is the union of chunk s·R+r across replicas, so the R shards union,
// in schedule order, to the single-replica epoch. The executing Trainer,
// the serial Union oracle, and the simulators all follow this scheme.
func ShardSeeds(perm []int32, batchSize, r, replicas int) []int32 {
	nb := prep.NumBatches(len(perm), batchSize)
	var out []int32
	for c := r; c < nb; c += replicas {
		lo := c * batchSize
		hi := lo + batchSize
		if hi > len(perm) {
			hi = len(perm)
		}
		out = append(out, perm[lo:hi]...)
	}
	return out
}

// TrainConfig configures the executing data-parallel trainer. The embedded
// train.Config carries the per-replica hyperparameters; BatchSize is the
// PER-REPLICA batch size, so the effective batch grows with the replica
// count exactly as the paper scales it (§6). Only the SALIENT executor is
// supported; Config.Executor is ignored.
type TrainConfig struct {
	train.Config

	// Replicas is the data-parallel width R. Must be at least 1.
	Replicas int
	// Stores optionally gives each replica its own feature store
	// (len == Replicas), e.g. one shard or cache per simulated device — or,
	// in the distributed setting, each replica's store.Remote over its own
	// partition. Nil shares Config.Store across replicas (or one flat store
	// when that is nil too). Store choice never changes batch contents, so
	// it never changes training results either.
	Stores []store.FeatureStore
	// Graphs optionally gives each replica its own pinned topology view
	// (len == Replicas) — the distributed setting, where replica r samples
	// a *graph.Partitioned serving partition r locally and fetching the
	// rest over a transport. All views must be at one version; they replace
	// the shared epoch pin (the views are already pinned), and because a
	// partitioned view answers adjacency identically to the full graph,
	// distributed training stays bit-identical to the single-host schedule.
	// Mutually exclusive with Config.Graph.
	Graphs []graph.Viewer
}

// ReplicaStats is one replica's accounting for an executed epoch.
type ReplicaStats struct {
	Batches  int
	PrepWait time.Duration // blocked waiting on batch preparation
	Compute  time.Duration // decode + forward/backward + optimizer step
	SyncWait time.Duration // blocked at step barriers (straggler time)
}

// TrainStats summarizes one executed data-parallel epoch.
type TrainStats struct {
	Epoch     int
	Replicas  int
	Steps     int     // synchronized gradient steps (StepsFor)
	Batches   int     // batches consumed across all replicas
	Loss      float64 // mean NLL over all batches
	Acc       float64 // training accuracy over all seed rows
	NodesSeen int
	EdgesSeen int

	Wall     time.Duration
	Compute  time.Duration // max over replicas
	PrepWait time.Duration // max over replicas
	SyncWait time.Duration // max over replicas

	PerReplica []ReplicaStats
}

// SyncFraction returns the slowest-waiting replica's barrier time as a
// fraction of epoch wall time — the executed counterpart of the simulator's
// exposed all-reduce share.
func (s TrainStats) SyncFraction() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.SyncWait) / float64(s.Wall)
}

// replica is one data-parallel worker: a model copy, its optimizer, its own
// batch-preparation executor, and its decode scratch.
type replica struct {
	model   nn.Model
	params  []*nn.Param
	buffers [][]float32 // BatchNorm running stats, nil when the arch has none
	opt     *nn.Adam
	exec    *prep.Salient
	store   store.FeatureStore
	dec     train.Decoder
	pred    []int32
}

// Trainer executes real data-parallel training: R model replicas run
// concurrently, each feeding from its own prep executor stream over its
// deterministic shard of the epoch, synchronized once per step by a
// gradient average (AverageGradients) followed by identical per-replica
// optimizer steps — the executing counterpart of SimulateEpoch's cost
// model, with the same replica/seed partitioning scheme.
//
// Determinism: batch contents are keyed by (epoch seed, global batch
// index), dropout is re-keyed per batch the same way, gradients are
// averaged in replica order, and every replica applies the same update to
// identical optimizer state — so training is bit-reproducible across runs
// and bit-identical to the serial Union oracle, no matter how the replicas'
// goroutines interleave.
type Trainer struct {
	DS  *dataset.Dataset
	Cfg TrainConfig

	reps []*replica
	// pin re-pins Cfg.Graph once per epoch and hands every replica's
	// executor the SAME snapshot: R striped executors over one epoch must
	// sample one topology version or their union would diverge from the
	// serial oracle. Nil when training the static dataset graph.
	pin *epochPin
}

// epochPin is a Viewer that freezes its source's latest view at explicit
// re-pin points (epoch starts) instead of on every View call.
type epochPin struct {
	mu  sync.Mutex
	src graph.Viewer
	cur graph.View
}

func newEpochPin(src graph.Viewer) *epochPin {
	return &epochPin{src: src, cur: src.View()}
}

// View returns the currently pinned view (NOT the source's latest).
func (p *epochPin) View() graph.View {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cur
}

// repin adopts the source's latest view for the next epoch.
func (p *epochPin) repin() {
	snap := p.src.View()
	p.mu.Lock()
	p.cur = snap
	p.mu.Unlock()
}

// validate normalizes cfg and rejects inconsistent settings.
func (cfg *TrainConfig) validate() error {
	cfg.Config.Defaults()
	if cfg.Replicas < 1 {
		return fmt.Errorf("ddp: need at least one replica, got %d", cfg.Replicas)
	}
	if len(cfg.Fanouts) != cfg.Layers {
		return fmt.Errorf("ddp: %d fanouts for %d layers", len(cfg.Fanouts), cfg.Layers)
	}
	if cfg.Stores != nil && len(cfg.Stores) != cfg.Replicas {
		return fmt.Errorf("ddp: %d per-replica stores for %d replicas", len(cfg.Stores), cfg.Replicas)
	}
	if cfg.Graphs != nil {
		if len(cfg.Graphs) != cfg.Replicas {
			return fmt.Errorf("ddp: %d per-replica graphs for %d replicas", len(cfg.Graphs), cfg.Replicas)
		}
		if cfg.Graph != nil {
			return fmt.Errorf("ddp: per-replica Graphs and a shared Graph are mutually exclusive")
		}
		v := cfg.Graphs[0].View().Version()
		for r, g := range cfg.Graphs {
			if gv := g.View().Version(); gv != v {
				return fmt.Errorf("ddp: replica %d's graph view is at version %d, replica 0's at %d — one epoch must sample one version", r, gv, v)
			}
		}
	}
	return nil
}

// newReplica builds replica r: an identically initialized model (same seed,
// same init RNG), its own optimizer, and a prep executor striped so its
// local batches land on global epoch indices r, r+R, r+2R, …
func newReplica(ds *dataset.Dataset, cfg TrainConfig, pin graph.Viewer, r int) (*replica, error) {
	st := cfg.Store
	if cfg.Stores != nil {
		st = cfg.Stores[r]
	}
	if cfg.Graphs != nil {
		pin = cfg.Graphs[r] // already a pinned view; no shared epoch pin
	}
	model, err := train.NewModel(cfg.Arch, nn.ModelConfig{
		In:     ds.FeatDim,
		Hidden: cfg.Hidden,
		Out:    ds.NumClasses,
		Layers: cfg.Layers,
		Seed:   cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	opt := nn.NewAdam(model.Params(), cfg.LR)
	if cfg.WeightDecay > 0 {
		opt.WithWeightDecay(cfg.WeightDecay)
	}
	exec, err := prep.NewSalient(ds, prep.Options{
		Workers:     cfg.Workers,
		BatchSize:   cfg.BatchSize,
		Fanouts:     cfg.Fanouts,
		Sampler:     sampler.FastConfig(),
		Ordered:     true,
		Store:       st,
		Graph:       pin,
		FixedOrder:  true,
		IndexBase:   r,
		IndexStride: cfg.Replicas,
	})
	if err != nil {
		return nil, err
	}
	rep := &replica{
		model:  model,
		params: model.Params(),
		opt:    opt,
		exec:   exec,
		store:  st,
		pred:   make([]int32, cfg.BatchSize),
	}
	if bm, ok := model.(nn.BufferModel); ok {
		rep.buffers = bm.StatBuffers()
	}
	return rep, nil
}

// NewTrainer builds an executing data-parallel trainer over ds.
func NewTrainer(ds *dataset.Dataset, cfg TrainConfig) (*Trainer, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Store == nil && cfg.Stores == nil {
		cfg.Store = store.NewFlat(ds) // one store shared by all replicas
	}
	t := &Trainer{DS: ds, Cfg: cfg}
	var pin graph.Viewer
	if cfg.Graph != nil {
		t.pin = newEpochPin(cfg.Graph)
		pin = t.pin
	}
	for r := 0; r < cfg.Replicas; r++ {
		rep, err := newReplica(ds, cfg, pin, r)
		if err != nil {
			return nil, err
		}
		t.reps = append(t.reps, rep)
	}
	// The DDP broadcast at initialization. Replicas are already identical
	// (same init seed), but the broadcast keeps the invariant explicit.
	SyncParams(t.paramSets())
	t.broadcastBuffers()
	return t, nil
}

// broadcastBuffers copies the leader's BatchNorm running statistics into
// every other replica (PyTorch DDP's broadcast_buffers semantics). Running
// stats take no gradients, so the all-reduce never touches them; without
// the broadcast each replica's eval-mode statistics would see only its own
// shard. Called from the coordinator while every replica is parked at the
// step barrier, and once at construction.
func (t *Trainer) broadcastBuffers() {
	lead := t.reps[0].buffers
	if lead == nil {
		return
	}
	for _, rep := range t.reps[1:] {
		for i := range lead {
			copy(rep.buffers[i], lead[i])
		}
	}
}

// paramSets returns every replica's parameter list, replica order.
func (t *Trainer) paramSets() [][]*nn.Param {
	ps := make([][]*nn.Param, len(t.reps))
	for r, rep := range t.reps {
		ps[r] = rep.params
	}
	return ps
}

// Model returns the leader replica's model. After a successful epoch every
// replica's parameters are bit-identical, so the leader speaks for all.
func (t *Trainer) Model() nn.Model { return t.reps[0].model }

// ReplicaModel returns replica r's model, for consistency inspection.
func (t *Trainer) ReplicaModel(r int) nn.Model { return t.reps[r].model }

// FeatureStore returns the store replica r gathers through.
func (t *Trainer) FeatureStore(r int) store.FeatureStore { return t.reps[r].store }

// arrival is one replica's report at a step barrier.
type arrival struct {
	rep int
	err error
}

// drainStream releases every remaining batch of a stream and waits for its
// executor goroutines, so an aborting replica never strands pinned buffers.
func drainStream(s *prep.Stream) {
	for b := range s.C {
		b.Release()
	}
	s.Wait()
}

// TrainEpoch executes one synchronized data-parallel epoch. The first
// batch-preparation failure on any replica cancels the epoch on every
// replica cleanly (streams drained, buffers released) and is returned.
func (t *Trainer) TrainEpoch(epoch int) (TrainStats, error) {
	R := len(t.reps)
	if t.pin != nil {
		// Adopt the dynamic graph's latest state once for all R replicas.
		t.pin.repin()
	}
	epochSeed := train.EpochSeed(t.Cfg.Seed, epoch)
	perm := prep.EpochPerm(t.DS.Train, epochSeed)
	nb := prep.NumBatches(len(perm), t.Cfg.BatchSize)
	steps := StepsFor(nb, R)

	if t.Cfg.Schedule != nil {
		factor := t.Cfg.Schedule(epoch)
		for _, rep := range t.reps {
			rep.opt.SetLRFactor(factor)
		}
	}

	type repAcc struct {
		stats         ReplicaStats
		lossSum       float64
		correct, rows int
		nodes, edges  int
	}
	accs := make([]repAcc, R)
	arrive := make(chan arrival, R)
	resume := make([]chan bool, R)
	for r := range resume {
		resume[r] = make(chan bool, 1)
	}

	start := time.Now()
	var wg sync.WaitGroup
	for r := 0; r < R; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rep := t.reps[r]
			acc := &accs[r]
			shard := ShardSeeds(perm, t.Cfg.BatchSize, r, R)
			mySteps := prep.NumBatches(len(shard), t.Cfg.BatchSize)
			stream := rep.exec.Run(shard, epochSeed)
			defer drainStream(stream)
			for s := 0; s < steps; s++ {
				if s < mySteps {
					waitStart := time.Now()
					b, ok := <-stream.C
					if !ok {
						arrive <- arrival{r, fmt.Errorf("ddp: replica %d stream ended at step %d of %d", r, s, mySteps)}
						<-resume[r]
						return
					}
					acc.stats.PrepWait += time.Since(waitStart)
					if b.Err != nil {
						b.Release()
						arrive <- arrival{r, fmt.Errorf("ddp: replica %d: %w", r, b.Err)}
						<-resume[r]
						return
					}
					cStart := time.Now()
					res := train.ReplicaStep(rep.model, &rep.dec, b, epochSeed, rep.pred)
					b.Release()
					acc.lossSum += res.Loss
					acc.correct += res.Correct
					acc.rows += res.Rows
					acc.nodes += res.Nodes
					acc.edges += res.Edges
					acc.stats.Batches++
					acc.stats.Compute += time.Since(cStart)
				}
				// A replica with no batch at the epoch's final partial step
				// still joins the barrier: it contributes no gradient but
				// receives the participants' average (DDP's uneven-input
				// join), so every replica's optimizer advances in lockstep
				// and the replicas stay bit-identical.
				arrive <- arrival{r, nil}
				syncStart := time.Now()
				cont := <-resume[r]
				acc.stats.SyncWait += time.Since(syncStart)
				if !cont {
					return
				}
				uStart := time.Now()
				if t.Cfg.ClipNorm > 0 {
					nn.ClipGradNorm(rep.params, t.Cfg.ClipNorm)
				}
				rep.opt.Step(rep.params)
				acc.stats.Compute += time.Since(uStart)
			}
		}(r)
	}

	// Coordinator: the per-step all-reduce. Every replica arrives once per
	// step; only the first p = min(R, nb−s·R) hold a gradient (the others
	// are final-step idlers). Averaging happens while every replica is
	// parked at the barrier, so no goroutine ever observes a half-averaged
	// gradient.
	var firstErr error
	params := t.paramSets()
	for s := 0; s < steps; s++ {
		p := R
		if rem := nb - s*R; rem < p {
			p = rem
		}
		stepErr := false
		for i := 0; i < R; i++ {
			a := <-arrive
			if a.err != nil {
				stepErr = true
				if firstErr == nil {
					firstErr = a.err
				}
			}
		}
		if stepErr {
			for r := 0; r < R; r++ {
				resume[r] <- false
			}
			break
		}
		AverageGradients(params[:p])
		for r := p; r < R; r++ {
			for i := range params[0] {
				params[r][i].G.Copy(params[0][i].G)
			}
		}
		t.broadcastBuffers()
		for r := 0; r < R; r++ {
			resume[r] <- true
		}
	}
	wg.Wait()

	st := TrainStats{
		Epoch:      epoch,
		Replicas:   R,
		Steps:      steps,
		PerReplica: make([]ReplicaStats, R),
	}
	var correct, rows int
	for r := range accs {
		a := &accs[r]
		st.PerReplica[r] = a.stats
		st.Batches += a.stats.Batches
		st.Loss += a.lossSum
		correct += a.correct
		rows += a.rows
		st.NodesSeen += a.nodes
		st.EdgesSeen += a.edges
		if a.stats.Compute > st.Compute {
			st.Compute = a.stats.Compute
		}
		if a.stats.PrepWait > st.PrepWait {
			st.PrepWait = a.stats.PrepWait
		}
		if a.stats.SyncWait > st.SyncWait {
			st.SyncWait = a.stats.SyncWait
		}
	}
	st.Wall = time.Since(start)
	if st.Batches > 0 {
		st.Loss /= float64(st.Batches)
	}
	if rows > 0 {
		st.Acc = float64(correct) / float64(rows)
	}
	return st, firstErr
}

// Fit executes n epochs, stopping at the first preparation failure.
func (t *Trainer) Fit(epochs int) ([]TrainStats, error) {
	out := make([]TrainStats, 0, epochs)
	for e := 0; e < epochs; e++ {
		s, err := t.TrainEpoch(e)
		if err != nil {
			return out, err
		}
		out = append(out, s)
	}
	return out, nil
}

// Union is the serial single-replica oracle for Trainer: it executes the
// identical union batch schedule on one model with one executor and one
// goroutine, accumulating each step's R shard gradients and averaging them
// with the same arithmetic (AverageGradients over stashed gradient sets, in
// replica order) before one optimizer step. Because batch contents, dropout
// keys, averaging order, and optimizer state all match, Trainer's final
// parameters are bit-identical to Union's — the full-loop generalization of
// the averaged-shard-equals-union-batch gradient property.
type Union struct {
	DS  *dataset.Dataset
	Cfg TrainConfig

	model  nn.Model
	params []*nn.Param
	opt    *nn.Adam
	exec   *prep.Salient
	dec    train.Decoder
	pred   []int32
	stash  [][]*nn.Param // R gradient stash sets mirroring params
}

// NewUnion builds the serial union-schedule oracle for cfg.
func NewUnion(ds *dataset.Dataset, cfg TrainConfig) (*Union, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	model, err := train.NewModel(cfg.Arch, nn.ModelConfig{
		In:     ds.FeatDim,
		Hidden: cfg.Hidden,
		Out:    ds.NumClasses,
		Layers: cfg.Layers,
		Seed:   cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	opt := nn.NewAdam(model.Params(), cfg.LR)
	if cfg.WeightDecay > 0 {
		opt.WithWeightDecay(cfg.WeightDecay)
	}
	exec, err := prep.NewSalient(ds, prep.Options{
		Workers:   cfg.Workers,
		BatchSize: cfg.BatchSize,
		Fanouts:   cfg.Fanouts,
		Sampler:   sampler.FastConfig(),
		Ordered:   true,
		Store:     cfg.Store,
		Graph:     cfg.Graph,
	})
	if err != nil {
		return nil, err
	}
	u := &Union{
		DS:     ds,
		Cfg:    cfg,
		model:  model,
		params: model.Params(),
		opt:    opt,
		exec:   exec,
		pred:   make([]int32, cfg.BatchSize),
	}
	for r := 0; r < cfg.Replicas; r++ {
		mirror := make([]*nn.Param, len(u.params))
		for i, p := range u.params {
			mirror[i] = &nn.Param{Name: p.Name, G: p.G.Clone()}
		}
		u.stash = append(u.stash, mirror)
	}
	return u, nil
}

// Model returns the oracle's model.
func (u *Union) Model() nn.Model { return u.model }

// TrainEpoch runs one epoch of the union schedule: batches arrive in global
// order; every R consecutive batches (fewer on the final partial step) form
// one gradient-accumulation step.
func (u *Union) TrainEpoch(epoch int) (TrainStats, error) {
	R := u.Cfg.Replicas
	epochSeed := train.EpochSeed(u.Cfg.Seed, epoch)
	nb := prep.NumBatches(len(u.DS.Train), u.Cfg.BatchSize)
	if u.Cfg.Schedule != nil {
		u.opt.SetLRFactor(u.Cfg.Schedule(epoch))
	}
	st := TrainStats{
		Epoch:      epoch,
		Replicas:   R,
		Steps:      StepsFor(nb, R),
		PerReplica: make([]ReplicaStats, 1),
	}

	start := time.Now()
	stream := u.exec.Run(u.DS.Train, epochSeed)
	var firstErr error
	var correct, rows, got int
	for {
		waitStart := time.Now()
		b, ok := <-stream.C
		if !ok {
			break
		}
		st.PrepWait += time.Since(waitStart)
		if b.Err != nil || firstErr != nil {
			if firstErr == nil {
				firstErr = b.Err
			}
			b.Release()
			continue
		}
		cStart := time.Now()
		res := train.ReplicaStep(u.model, &u.dec, b, epochSeed, u.pred)
		last := b.Index == nb-1
		b.Release()
		for i, p := range u.params {
			u.stash[got][i].G.Copy(p.G)
		}
		got++
		st.Loss += res.Loss
		correct += res.Correct
		rows += res.Rows
		st.NodesSeen += res.Nodes
		st.EdgesSeen += res.Edges
		st.Batches++
		if got == R || last {
			AverageGradients(u.stash[:got])
			for i, p := range u.params {
				p.G.Copy(u.stash[0][i].G)
			}
			if u.Cfg.ClipNorm > 0 {
				nn.ClipGradNorm(u.params, u.Cfg.ClipNorm)
			}
			u.opt.Step(u.params)
			got = 0
		}
		st.Compute += time.Since(cStart)
	}
	stream.Wait()
	if firstErr == nil {
		firstErr = stream.Err()
	}
	st.Wall = time.Since(start)
	st.PerReplica[0] = ReplicaStats{Batches: st.Batches, PrepWait: st.PrepWait, Compute: st.Compute}
	if st.Batches > 0 {
		st.Loss /= float64(st.Batches)
	}
	if rows > 0 {
		st.Acc = float64(correct) / float64(rows)
	}
	return st, firstErr
}

// Fit runs n epochs of the union schedule.
func (u *Union) Fit(epochs int) ([]TrainStats, error) {
	out := make([]TrainStats, 0, epochs)
	for e := 0; e < epochs; e++ {
		s, err := u.TrainEpoch(e)
		if err != nil {
			return out, err
		}
		out = append(out, s)
	}
	return out, nil
}
