package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := Table{
		ID:     "t",
		Title:  "demo",
		Header: []string{"a", "bb"},
	}
	tb.AddRow("1", "2")
	tb.AddRow("333", "4")
	tb.AddNote("note %d", 7)
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	for _, want := range []string{"== t: demo ==", "333", "note 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestFormattingHelpers(t *testing.T) {
	if secs(123.4) != "123s" || secs(12.34) != "12.3s" || secs(1.234) != "1.23s" {
		t.Fatalf("secs formatting: %s %s %s", secs(123.4), secs(12.34), secs(1.234))
	}
	if pct(0.283) != "28%" {
		t.Fatalf("pct: %s", pct(0.283))
	}
	if speedup(3.04) != "3.04x" {
		t.Fatalf("speedup: %s", speedup(3.04))
	}
}

func TestTable1ShapeMatchesPaper(t *testing.T) {
	tb := Table1(1)
	if len(tb.Rows) != 3 {
		t.Fatalf("want 3 dataset rows, got %d", len(tb.Rows))
	}
	if tb.Rows[0][0] != "arxiv" || tb.Rows[2][0] != "papers" {
		t.Fatalf("row order wrong: %v", tb.Rows)
	}
}

func TestTable2HasThreeWorkerCounts(t *testing.T) {
	tb := Table2()
	if len(tb.Rows) != 3 {
		t.Fatalf("want rows for P=1,10,20, got %d", len(tb.Rows))
	}
	if tb.Rows[0][0] != "1" || tb.Rows[2][0] != "20" {
		t.Fatalf("worker counts wrong: %v", tb.Rows)
	}
}

func TestTable3FourModes(t *testing.T) {
	tb := Table3(1)
	if len(tb.Rows) != 4 {
		t.Fatalf("want 4 optimization rows, got %d", len(tb.Rows))
	}
	if !strings.Contains(tb.Rows[0][0], "PyG") || !strings.Contains(tb.Rows[3][0], "pipelined") {
		t.Fatalf("mode labels wrong: %v", tb.Rows)
	}
}

func TestFig4AndFig5AndTable7Render(t *testing.T) {
	var buf bytes.Buffer
	for _, tb := range []Table{Fig4(1), Fig5(1), Table7(1), Fig6Timing(1)} {
		if len(tb.Rows) == 0 {
			t.Fatalf("%s: no rows", tb.ID)
		}
		tb.Render(&buf)
	}
	if !strings.Contains(buf.String(), "SALIENT") {
		t.Fatal("rendered output missing SALIENT rows")
	}
}

func TestRegistryCoversEveryPaperExhibit(t *testing.T) {
	want := []string{"table1", "table2", "table3", "table6", "table7",
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
		"cache", "partition", "memory", "strategies", "sensitivity", "batching",
		"serving", "featurestore", "ddpreal", "timing", "churn", "kernels",
		"transport", "embcache", "fleet"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments, want %d: %v", len(got), len(want), got)
	}
	set := map[string]bool{}
	for _, id := range got {
		set[id] = true
	}
	for _, id := range want {
		if !set[id] {
			t.Fatalf("missing experiment %s", id)
		}
	}
}

func TestRunOneUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := RunOne(&buf, "table99", DefaultOptions()); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestRunOneTimingExperiments(t *testing.T) {
	var buf bytes.Buffer
	o := DefaultOptions()
	for _, id := range []string{"table1", "table2", "table3", "fig4", "fig5", "table7"} {
		if err := RunOne(&buf, id, o); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	if buf.Len() == 0 {
		t.Fatal("no output")
	}
}

// tinyAcc is a minimal accuracy preset so the real-training experiment
// drivers stay testable in seconds.
func tinyAcc() AccuracyOpts {
	return AccuracyOpts{Scale: 0.05, Hidden: 16, Layers: 2, Epochs: 2, Reps: 1, Workers: 2, Seed: 1}
}

func TestTable6RunsAtTinyScale(t *testing.T) {
	tb, err := Table6(tinyAcc())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("want 3 dataset rows, got %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if len(row) != 5 {
			t.Fatalf("want 5 columns (dataset + 4 fanouts), got %v", row)
		}
	}
}

func TestFig3RunsAtTinyScale(t *testing.T) {
	tb, err := Fig3(tinyAcc())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) == 0 {
		t.Fatal("no degree bins")
	}
}

func TestSweepTinyIsSane(t *testing.T) {
	pts, err := Sweep(SamplerOpts{Scale: 0.04, Batch: 64, Fanouts: []int{5, 5}, Batches: 2, Rounds: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 96 {
		t.Fatalf("design space has %d points, want 96", len(pts))
	}
	for _, p := range pts {
		if p.SpeedupA <= 0 || p.SpeedupB <= 0 {
			t.Fatalf("non-positive speedup for %v", p.Config)
		}
	}
}

func TestMeanStd(t *testing.T) {
	m, s := meanStd([]float64{1, 2, 3})
	if m != 2 || s != 1 {
		t.Fatalf("meanStd = %v, %v; want 2, 1", m, s)
	}
	m, s = meanStd([]float64{5})
	if m != 5 || s != 0 {
		t.Fatalf("single value: %v, %v", m, s)
	}
	m, s = meanStd(nil)
	if m != 0 || s != 0 {
		t.Fatalf("empty: %v, %v", m, s)
	}
}

func TestFanoutHelpers(t *testing.T) {
	if f := trainFanouts(3); f[0] != 15 || f[1] != 10 || f[2] != 5 {
		t.Fatalf("trainFanouts(3) = %v", f)
	}
	if f := trainFanouts(2); f[0] != 10 || f[1] != 5 {
		t.Fatalf("trainFanouts(2) = %v", f)
	}
	if f := trainFanouts(4); len(f) != 4 {
		t.Fatalf("trainFanouts(4) = %v", f)
	}
	if f := uniformFanout(3, 20); f[0] != 20 || f[2] != 20 {
		t.Fatalf("uniformFanout = %v", f)
	}
}

func tinySampler() SamplerOpts {
	return SamplerOpts{Scale: 0.05, Batch: 32, Fanouts: []int{5, 5}, Batches: 2, Rounds: 1, Seed: 1}
}

func TestCacheAblationRuns(t *testing.T) {
	tb, err := CacheAblation(tinySampler())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("want 6 cache configurations, got %d", len(tb.Rows))
	}
	// The no-cache row must report a 0% hit rate and 100% feature bytes.
	if tb.Rows[0][2] != "0.0%" || tb.Rows[0][3] != "100%" {
		t.Fatalf("no-cache row wrong: %v", tb.Rows[0])
	}
}

func TestServingSweepRunsAtTinyScale(t *testing.T) {
	tb, err := ServingSweep(ServingOpts{
		Scale: 0.05, Hidden: 16, Epochs: 1, Workers: 2, Requests: 200, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("want 3 offered-load levels, got %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if len(row) != len(tb.Header) {
			t.Fatalf("ragged row %v vs header %v", row, tb.Header)
		}
	}
}

func TestPartitionStudyRuns(t *testing.T) {
	tb, err := PartitionStudy(tinySampler())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 12 { // 4 part counts x 3 methods
		t.Fatalf("want 12 rows, got %d", len(tb.Rows))
	}
}

func TestMemoryStudyRuns(t *testing.T) {
	tb, err := MemoryStudy(tinySampler())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("want 3 dataset rows, got %d", len(tb.Rows))
	}
	// papers must show a large layer-wise footprint (the OOM argument).
	if tb.Rows[2][1] == tb.Rows[2][2] {
		t.Fatalf("papers layer-wise equals sampled: %v", tb.Rows[2])
	}
}

func TestBytesHuman(t *testing.T) {
	cases := map[int64]string{
		512:            "512B",
		2048:           "2.0KB",
		3 << 20:        "3.0MB",
		5 << 30:        "5.0GB",
		211_700_000_00: "19.7GB",
	}
	for in, want := range cases {
		if got := bytesHuman(in); got != want {
			t.Fatalf("bytesHuman(%d) = %s, want %s", in, got, want)
		}
	}
}

func TestStrategyStudyRunsAtTinyScale(t *testing.T) {
	tb, err := StrategyStudy(tinyAcc())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 7 {
		t.Fatalf("want 7 strategy rows, got %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if len(row) != 5 {
			t.Fatalf("row %v has %d cells", row, len(row))
		}
	}
}

func TestBatchingStudyRunsAtTinyScale(t *testing.T) {
	tb, err := BatchingStudy(tinyAcc())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("want 2 scheme rows, got %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if len(row) != 6 {
			t.Fatalf("row %v has %d cells, want 6", row, len(row))
		}
	}
}

func TestSensitivityBoundAttribution(t *testing.T) {
	tb := Sensitivity(1)
	if len(tb.Rows) != 6 {
		t.Fatalf("want 6 sweep points, got %d", len(tb.Rows))
	}
	// The paper's configuration (128 dims, 1x fanout) must be GPU-bound;
	// the widest features must be bus-bound.
	if tb.Rows[0][6] != "GPU compute" {
		t.Fatalf("base config bound by %q, want GPU compute", tb.Rows[0][6])
	}
	if tb.Rows[4][6] != "data bus" {
		t.Fatalf("512-dim config bound by %q, want data bus", tb.Rows[4][6])
	}
}

func TestFig1StructuralContrast(t *testing.T) {
	tables := Fig1(1)
	if len(tables) != 2 {
		t.Fatalf("want 2 panels, got %d", len(tables))
	}
	joinRows := func(tb Table) string {
		s := ""
		for _, r := range tb.Rows {
			s += r[0] + "\n"
		}
		return s
	}
	a, b := joinRows(tables[0]), joinRows(tables[1])
	if !strings.Contains(a, "CPU main") || !strings.Contains(a, "GPU compute") {
		t.Fatal("baseline panel missing resources")
	}
	if !strings.Contains(b, "GPU compute") {
		t.Fatal("salient panel missing compute row")
	}
	// The structural claim: SALIENT's compute row has far fewer idle cells
	// than the baseline's within each panel's own span.
	idleFrac := func(panel string) float64 {
		for _, line := range strings.Split(panel, "\n") {
			if strings.Contains(line, "GPU compute") {
				bar := line[strings.Index(line, "|")+1 : strings.LastIndex(line, "|")]
				dots := strings.Count(bar, ".")
				return float64(dots) / float64(len(bar))
			}
		}
		return -1
	}
	ai, bi := idleFrac(a), idleFrac(b)
	if ai < 0 || bi < 0 {
		t.Fatal("compute rows not found")
	}
	if !(bi < ai) {
		t.Fatalf("SALIENT compute idle fraction %.2f not below baseline %.2f", bi, ai)
	}
	if bi > 0.25 {
		t.Fatalf("SALIENT compute idle fraction %.2f too high for the Figure 1 claim", bi)
	}
}

func TestDDPRealSweepTiny(t *testing.T) {
	// The table rendering itself is exercised by BenchmarkDDPRealSweep (the
	// CI smoke run); here one execution of the same preset checks the rows.
	rows, err := ddpRealResults(smallDDPReal())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.secs <= 0 || r.loss <= 0 || r.acc < 0 || r.acc > 1 {
			t.Fatalf("implausible executed row: %+v", r)
		}
		if r.syncFrac < 0 || r.syncFrac > 1 {
			t.Fatalf("sync fraction out of range: %+v", r)
		}
		if r.simSecs <= 0 || r.simSpeedup <= 0 {
			t.Fatalf("missing simulated comparison: %+v", r)
		}
	}
	// Doubling replicas halves the synchronized step count (same scheme as
	// the simulator).
	if rows[1].steps != (rows[0].steps+1)/2 {
		t.Fatalf("steps %d -> %d, want halved", rows[0].steps, rows[1].steps)
	}
}
