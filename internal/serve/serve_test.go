package serve

import (
	"errors"
	"sync"
	"testing"
	"time"

	"salient/internal/cache"
	"salient/internal/dataset"
	"salient/internal/half"
	"salient/internal/infer"
	"salient/internal/partition"
	"salient/internal/store"
	"salient/internal/train"
)

// fitted trains a small model once per test binary; the serving tests all
// read from it concurrently through the server's own synchronization.
var fittedOnce struct {
	sync.Once
	ds  *dataset.Dataset
	tr  *train.Trainer
	err error
}

func fitted(t testing.TB) (*dataset.Dataset, *train.Trainer) {
	t.Helper()
	fittedOnce.Do(func() {
		ds, err := dataset.Load(dataset.Arxiv, 0.05)
		if err != nil {
			fittedOnce.err = err
			return
		}
		tr, err := train.New(ds, train.Config{
			Arch: "SAGE", Hidden: 32, Layers: 2, Fanouts: []int{10, 5},
			BatchSize: 128, LR: 5e-3, Workers: 2, Seed: 3,
		})
		if err != nil {
			fittedOnce.err = err
			return
		}
		if _, err := tr.Fit(2); err != nil {
			fittedOnce.err = err
			return
		}
		fittedOnce.ds, fittedOnce.tr = ds, tr
	})
	if fittedOnce.err != nil {
		t.Fatal(fittedOnce.err)
	}
	return fittedOnce.ds, fittedOnce.tr
}

const serveSeed = 7

var serveFanouts = []int{10, 5}

// singleShot computes the ground truth the server must match: one-shot
// infer.Sampled on each node alone, with the server's seed and fanouts.
func singleShot(t testing.TB, nodes []int32) map[int32]int32 {
	t.Helper()
	ds, tr := fitted(t)
	want := make(map[int32]int32, len(nodes))
	for _, v := range nodes {
		if _, ok := want[v]; ok {
			continue
		}
		pred, err := infer.Sampled(tr.Model, ds, []int32{v}, infer.Options{
			Fanouts: serveFanouts, BatchSize: 1, Workers: 1, Seed: serveSeed,
		})
		if err != nil {
			t.Fatalf("infer.Sampled(%d): %v", v, err)
		}
		want[v] = pred[0]
	}
	return want
}

func TestSubmitMatchesSingleShotInference(t *testing.T) {
	ds, tr := fitted(t)
	nodes := ds.Test[:50]
	want := singleShot(t, nodes)

	s, err := New(tr.Model, ds, Options{
		Fanouts: serveFanouts, Workers: 3, MaxBatch: 8,
		MaxDelay: 200 * time.Microsecond, Seed: serveSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Sequential submissions: whatever micro-batches form, every answer must
	// equal the singleton ground truth.
	for _, v := range nodes {
		got, err := s.Submit(v)
		if err != nil {
			t.Fatalf("Submit(%d): %v", v, err)
		}
		if got != want[v] {
			t.Fatalf("Submit(%d) = %d, want %d (single-shot infer.Sampled)", v, got, want[v])
		}
	}
}

func TestConcurrentSubmittersDeterministic(t *testing.T) {
	ds, tr := fitted(t)
	nodes := ds.Test[:32]
	want := singleShot(t, nodes)

	s, err := New(tr.Model, ds, Options{
		Fanouts: serveFanouts, Workers: 4, MaxBatch: 16,
		MaxDelay: 300 * time.Microsecond, QueueCapacity: 4096, Seed: serveSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// 64 submitters × 8 requests each, all hammering the same node set so
	// coalescing mixes them arbitrarily across micro-batches.
	const submitters, perSubmitter = 64, 8
	errs := make(chan error, submitters)
	var wg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perSubmitter; i++ {
				v := nodes[(g*perSubmitter+i)%len(nodes)]
				got, err := s.Submit(v)
				if err != nil {
					errs <- err
					return
				}
				if got != want[v] {
					errs <- errors.New("prediction mismatch under concurrency")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := s.Stats()
	if st.Served != submitters*perSubmitter {
		t.Fatalf("served %d, want %d", st.Served, submitters*perSubmitter)
	}
	if st.Latency.Count != int(st.Served) {
		t.Fatalf("latency samples %d != served %d", st.Latency.Count, st.Served)
	}
	if st.Batches == 0 || st.Occupancy.Count != int(st.Batches) {
		t.Fatalf("occupancy samples %d vs batches %d", st.Occupancy.Count, st.Batches)
	}
}

func TestSaturationRejectsWithoutDeadlock(t *testing.T) {
	ds, tr := fitted(t)
	nodes := ds.Test[:16]
	want := singleShot(t, nodes)

	// A two-slot ring and one worker against 32 hot submitters: admission
	// control must shed load with ErrSaturated, and every accepted request
	// must still be answered correctly — no deadlock, no wrong rows.
	s, err := New(tr.Model, ds, Options{
		Fanouts: serveFanouts, Workers: 1, MaxBatch: 4,
		MaxDelay: 0, QueueCapacity: 2, Seed: serveSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const submitters, perSubmitter = 32, 16
	var rejected, served int64
	var mu sync.Mutex
	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		for g := 0; g < submitters; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < perSubmitter; i++ {
					v := nodes[(g+i)%len(nodes)]
					got, err := s.Submit(v)
					mu.Lock()
					switch {
					case errors.Is(err, ErrSaturated):
						rejected++
					case err != nil:
						mu.Unlock()
						t.Errorf("Submit(%d): %v", v, err)
						return
					case got != want[v]:
						mu.Unlock()
						t.Errorf("Submit(%d) = %d, want %d", v, got, want[v])
						return
					default:
						served++
					}
					mu.Unlock()
				}
			}(g)
		}
		wg.Wait()
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("saturated server deadlocked")
	}

	if rejected == 0 {
		t.Fatal("no rejections despite a 2-slot ring under 32 hot submitters")
	}
	if served == 0 {
		t.Fatal("every request rejected; server made no progress")
	}
	st := s.Stats()
	if st.Rejected != rejected || st.Served != served {
		t.Fatalf("stats {rejected %d, served %d} disagree with observed {%d, %d}",
			st.Rejected, st.Served, rejected, served)
	}
}

func TestCacheAccounting(t *testing.T) {
	ds, tr := fitted(t)
	s, err := New(tr.Model, ds, Options{
		Fanouts: serveFanouts, Workers: 2, MaxBatch: 8, Seed: serveSeed,
		CacheRows: int(ds.G.N) / 4, CachePolicy: cache.StaticDegree,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range ds.Test[:64] {
		if _, err := s.Submit(v); err != nil {
			t.Fatalf("Submit(%d): %v", v, err)
		}
	}
	s.Close()
	st := s.Stats()
	if st.CacheLookups == 0 {
		t.Fatal("cache enabled but no lookups recorded")
	}
	if st.CacheHits == 0 {
		t.Fatal("quarter-graph static-degree cache recorded zero hits")
	}
	if st.BytesSaved == 0 || st.BytesTransferred == 0 {
		t.Fatalf("transfer accounting empty: %+v", st)
	}
	rowBytes := int64(ds.FeatDim) * 2
	if st.BytesSaved+st.BytesTransferred != st.CacheLookups*rowBytes {
		t.Fatalf("saved %d + transferred %d != lookups %d × row %d",
			st.BytesSaved, st.BytesTransferred, st.CacheLookups, rowBytes)
	}
}

// TestServeThroughShardedStore: a custom base store changes accounting,
// never answers — predictions must still match one-shot inference, and the
// cached wrapper must report shard traffic alongside cache savings.
func TestServeThroughShardedStore(t *testing.T) {
	ds, tr := fitted(t)
	nodes := ds.Test[:24]
	want := singleShot(t, nodes)

	a, err := partition.LDG(ds.G, 3)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := store.NewSharded(ds, a)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(tr.Model, ds, Options{
		Fanouts: serveFanouts, Workers: 2, MaxBatch: 8, Seed: serveSeed,
		Store: sharded, CacheRows: int(ds.G.N) / 4, CachePolicy: cache.StaticDegree,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range nodes {
		got, err := s.Submit(v)
		if err != nil {
			t.Fatalf("Submit(%d): %v", v, err)
		}
		if got != want[v] {
			t.Fatalf("Submit(%d) = %d, want %d", v, got, want[v])
		}
	}
	s.Close()
	ss := s.FeatureStore().Stats()
	if ss.RowsRemote == 0 {
		t.Fatal("sharded base store reported no cross-shard rows")
	}
	if ss.BytesSaved == 0 {
		t.Fatal("cached wrapper saved no transfer")
	}
	st := s.Stats()
	if st.BytesTransferred != ss.BytesMoved || st.BytesSaved != ss.BytesSaved {
		t.Fatalf("server stats %+v disagree with store stats %+v", st, ss)
	}
}

func TestSubmitAfterCloseAndBadNode(t *testing.T) {
	ds, tr := fitted(t)
	s, err := New(tr.Model, ds, Options{Fanouts: serveFanouts, Seed: serveSeed})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(int32(ds.G.N)); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	if _, err := s.Submit(-1); err == nil {
		t.Fatal("negative node accepted")
	}
	s.Close()
	s.Close() // idempotent
	if _, err := s.Submit(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
}

// TestServeThroughInt8Store: quantized storage flows through the serve path
// untouched — the server must predict exactly what one-shot inference through
// the same int8 store predicts, and the store's accounting must reflect int8
// row width (dim + 4 scale bytes), not the fp16 default.
func TestServeThroughInt8Store(t *testing.T) {
	ds, tr := fitted(t)
	nodes := ds.Test[:16]

	oneShot := store.NewFlatPrec(ds, half.Int8)
	want := make(map[int32]int32, len(nodes))
	for _, v := range nodes {
		pred, err := infer.Sampled(tr.Model, ds, []int32{v}, infer.Options{
			Fanouts: serveFanouts, BatchSize: 1, Workers: 1, Seed: serveSeed,
			Store: oneShot,
		})
		if err != nil {
			t.Fatalf("infer.Sampled(%d): %v", v, err)
		}
		want[v] = pred[0]
	}

	int8Store := store.NewFlatPrec(ds, half.Int8)
	s, err := New(tr.Model, ds, Options{
		Fanouts: serveFanouts, Workers: 2, MaxBatch: 4, Seed: serveSeed,
		Store: int8Store,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range nodes {
		got, err := s.Submit(v)
		if err != nil {
			t.Fatalf("Submit(%d): %v", v, err)
		}
		if got != want[v] {
			t.Fatalf("Submit(%d) = %d, want %d (int8 one-shot)", v, got, want[v])
		}
	}
	s.Close()
	ss := s.FeatureStore().Stats()
	if ss.RowsMoved == 0 {
		t.Fatal("int8 store moved no rows")
	}
	if wantBytes := ss.RowsMoved * int64(half.Int8.RowBytes(ds.FeatDim)); ss.BytesMoved != wantBytes {
		t.Fatalf("int8 store moved %d bytes for %d rows, want %d (dim+4 per row)",
			ss.BytesMoved, ss.RowsMoved, wantBytes)
	}
}
