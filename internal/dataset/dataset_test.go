package dataset

import (
	"testing"

	"salient/internal/half"
)

func smallConfig() Config {
	return Config{
		Name:        "test",
		Nodes:       2000,
		EdgesPerNew: 5,
		FeatDim:     16,
		NumClasses:  6,
		Homophily:   0.7,
		NoiseScale:  0.5,
		TrainFrac:   0.5,
		ValFrac:     0.2,
		TestFrac:    0.3,
		Seed:        7,
	}
}

func TestGenerateBasics(t *testing.T) {
	ds, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.G.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds.G.N != 2000 {
		t.Fatalf("N = %d", ds.G.N)
	}
	if ds.Feat.Rows != 2000 || ds.Feat.Cols != 16 {
		t.Fatalf("feat shape %dx%d", ds.Feat.Rows, ds.Feat.Cols)
	}
	if len(ds.FeatHalf) != len(ds.Feat.Data) {
		t.Fatal("half features length mismatch")
	}
	if len(ds.Labels) != 2000 {
		t.Fatal("labels length")
	}
	for _, l := range ds.Labels {
		if l < 0 || int(l) >= ds.NumClasses {
			t.Fatalf("label %d out of range", l)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(smallConfig())
	b, _ := Generate(smallConfig())
	if a.G.NumEdges() != b.G.NumEdges() {
		t.Fatal("edge counts differ across identical seeds")
	}
	for i := range a.G.Adj {
		if a.G.Adj[i] != b.G.Adj[i] {
			t.Fatalf("adjacency differs at %d", i)
		}
	}
	for i := range a.Feat.Data {
		if a.Feat.Data[i] != b.Feat.Data[i] {
			t.Fatalf("features differ at %d", i)
		}
	}
}

func TestSeedChangesOutput(t *testing.T) {
	cfg := smallConfig()
	a, _ := Generate(cfg)
	cfg.Seed = 8
	b, _ := Generate(cfg)
	if a.G.NumEdges() == b.G.NumEdges() && a.Feat.Data[0] == b.Feat.Data[0] {
		t.Fatal("different seeds produced identical dataset")
	}
}

func TestSplitsDisjointAndSized(t *testing.T) {
	ds, _ := Generate(smallConfig())
	seen := make(map[int32]string)
	check := func(name string, ids []int32) {
		for _, v := range ids {
			if v < 0 || v >= ds.G.N {
				t.Fatalf("%s id %d out of range", name, v)
			}
			if prev, dup := seen[v]; dup {
				t.Fatalf("node %d in both %s and %s", v, prev, name)
			}
			seen[v] = name
		}
	}
	check("train", ds.Train)
	check("val", ds.Val)
	check("test", ds.Test)
	if len(ds.Train) != 1000 || len(ds.Val) != 400 || len(ds.Test) != 600 {
		t.Fatalf("split sizes %d/%d/%d", len(ds.Train), len(ds.Val), len(ds.Test))
	}
}

func TestPowerLawishDegrees(t *testing.T) {
	ds, _ := Generate(smallConfig())
	maxDeg := ds.G.MaxDegree()
	avg := ds.G.AvgDegree()
	// Preferential attachment must create hubs: max degree far above average.
	if float64(maxDeg) < 5*avg {
		t.Fatalf("no hubs: max degree %d vs avg %.1f", maxDeg, avg)
	}
}

func TestHomophily(t *testing.T) {
	ds, _ := Generate(smallConfig())
	same, total := 0, 0
	for v := int32(0); v < ds.G.N; v++ {
		for _, w := range ds.G.Neighbors(v) {
			total++
			if ds.Labels[v] == ds.Labels[w] {
				same++
			}
		}
	}
	frac := float64(same) / float64(total)
	// With homophily 0.7 and 6 classes, same-label edge fraction must be far
	// above the 1/6 chance level.
	if frac < 0.4 {
		t.Fatalf("homophily too weak: same-label fraction %.3f", frac)
	}
}

func TestHalfFeaturesMatchFloat(t *testing.T) {
	ds, _ := Generate(smallConfig())
	for i := 0; i < 100; i++ {
		f := ds.Feat.Data[i]
		h := ds.FeatHalf[i].Float32()
		diff := f - h
		if diff < 0 {
			diff = -diff
		}
		// Half precision keeps ~3 decimal digits in this range.
		if diff > 0.01+0.001*abs32(f) {
			t.Fatalf("half feature %d deviates: %v vs %v", i, f, h)
		}
	}
}

func abs32(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}

func TestFeaturesSeparateClasses(t *testing.T) {
	// Mean feature distance within class should be smaller than across
	// classes — otherwise nothing is learnable.
	ds, _ := Generate(smallConfig())
	dim := ds.FeatDim
	centroid := make([][]float64, ds.NumClasses)
	counts := make([]int, ds.NumClasses)
	for c := range centroid {
		centroid[c] = make([]float64, dim)
	}
	for v := 0; v < int(ds.G.N); v++ {
		c := ds.Labels[v]
		counts[c]++
		row := ds.Feat.Row(v)
		for j, f := range row {
			centroid[c][j] += float64(f)
		}
	}
	for c := range centroid {
		for j := range centroid[c] {
			centroid[c][j] /= float64(counts[c])
		}
	}
	// Distance between first two class centroids must exceed the noise floor.
	var dist float64
	for j := 0; j < dim; j++ {
		d := centroid[0][j] - centroid[1][j]
		dist += d * d
	}
	if dist < 1 {
		t.Fatalf("class centroids too close: %v", dist)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Nodes: 1, EdgesPerNew: 1, FeatDim: 1, NumClasses: 2, TrainFrac: 0.5},
		{Nodes: 10, EdgesPerNew: 0, FeatDim: 1, NumClasses: 2, TrainFrac: 0.5},
		{Nodes: 10, EdgesPerNew: 1, FeatDim: 0, NumClasses: 2, TrainFrac: 0.5},
		{Nodes: 10, EdgesPerNew: 1, FeatDim: 1, NumClasses: 1, TrainFrac: 0.5},
		{Nodes: 10, EdgesPerNew: 1, FeatDim: 1, NumClasses: 2, TrainFrac: 0},
		{Nodes: 10, EdgesPerNew: 1, FeatDim: 1, NumClasses: 2, TrainFrac: 0.9, ValFrac: 0.9},
		{Nodes: 10, EdgesPerNew: 1, FeatDim: 1, NumClasses: 2, TrainFrac: 0.5, Homophily: 2},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestPresets(t *testing.T) {
	for _, name := range []string{Arxiv, Products, Papers} {
		cfg := PresetConfig(name, 0.02)
		ds, err := Generate(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := ds.G.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ds.Name != name {
			t.Fatalf("preset name %q", ds.Name)
		}
		if len(ds.Train) == 0 {
			t.Fatalf("%s: empty train split", name)
		}
	}
}

func TestPresetUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown preset did not panic")
		}
	}()
	PresetConfig("nope", 1)
}

func TestPresetSplitRatios(t *testing.T) {
	// products-like must have a tiny training split and huge test split.
	ds, err := Load(Products, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	n := float64(ds.G.N)
	if tf := float64(len(ds.Train)) / n; tf > 0.12 {
		t.Fatalf("products train fraction %.3f too large", tf)
	}
	if tf := float64(len(ds.Test)) / n; tf < 0.8 {
		t.Fatalf("products test fraction %.3f too small", tf)
	}
}

var _ = half.FromFloat32 // keep import when FeatHalf checks change
