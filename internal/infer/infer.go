// Package infer implements the paper's two inference regimes (§5):
//
//   - Sampled: mini-batch inference with neighborhood sampling, reusing the
//     exact training data path (prep executor → model forward). This is the
//     regime SALIENT argues for: bounded memory, reusable code, trivially
//     restrictable to a node subset, distributable.
//
//   - Full: layer-wise full-neighborhood inference, evaluating each layer
//     over the whole graph and materializing every layer's representations
//     in host memory — accurate but memory-hungry (it runs out of memory on
//     ogbn-papers100M in the paper).
//
// It also computes the accuracy-versus-degree profile of Figure 3.
package infer

import (
	"salient/internal/dataset"
	"salient/internal/graph"
	"salient/internal/nn"
	"salient/internal/prep"
	"salient/internal/sampler"
	"salient/internal/slicing"
	"salient/internal/tensor"
)

// Options configures sampled inference.
type Options struct {
	Fanouts   []int // per-layer inference fanouts (Table 6)
	BatchSize int
	Workers   int
	Seed      uint64
}

func (o *Options) defaults() {
	if o.BatchSize == 0 {
		o.BatchSize = 1024
	}
	if o.Workers == 0 {
		o.Workers = 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// Sampled predicts labels for the given nodes with one-shot neighborhood
// sampling, returning predictions aligned with nodes. The model is evaluated
// in inference mode (no dropout); the data path is the SALIENT executor.
func Sampled(m nn.Model, ds *dataset.Dataset, nodes []int32, opts Options) ([]int32, error) {
	opts.defaults()
	ex, err := prep.NewSalient(ds, prep.Options{
		Workers:   opts.Workers,
		BatchSize: opts.BatchSize,
		Fanouts:   opts.Fanouts,
		Sampler:   sampler.FastConfig(),
	})
	if err != nil {
		return nil, err
	}

	pred := make([]int32, len(nodes))
	pos := make(map[int32]int, len(nodes))
	for i, v := range nodes {
		pos[v] = i
	}

	stream := ex.Run(nodes, opts.Seed)
	var x *tensor.Dense
	rowPred := make([]int32, opts.BatchSize)
	for b := range stream.C {
		x = decodeInto(x, b.Buf)
		logp := m.Forward(x, b.MFG, false)
		logp.ArgmaxRows(rowPred[:logp.Rows])
		for i := 0; i < logp.Rows; i++ {
			pred[pos[b.Seeds[i]]] = rowPred[i]
		}
		b.Release()
	}
	stream.Wait()
	return pred, nil
}

func decodeInto(x *tensor.Dense, buf *slicing.Pinned) *tensor.Dense {
	if x == nil || x.Rows != buf.Rows || x.Cols != buf.Dim {
		x = tensor.New(buf.Rows, buf.Dim)
	}
	slicing.DecodeFeatures(x, buf)
	return x
}

// Full runs layer-wise full-neighborhood inference over the whole graph and
// returns predictions for the given nodes.
func Full(m nn.Model, ds *dataset.Dataset, nodes []int32) []int32 {
	logp := m.InferFull(ds.G, ds.Feat)
	all := make([]int32, logp.Rows)
	logp.ArgmaxRows(all)
	pred := make([]int32, len(nodes))
	for i, v := range nodes {
		pred[i] = all[v]
	}
	return pred
}

// Accuracy returns the fraction of nodes whose prediction matches labels.
func Accuracy(pred []int32, labels []int32, nodes []int32) float64 {
	if len(nodes) == 0 {
		return 0
	}
	correct := 0
	for i, v := range nodes {
		if pred[i] == labels[v] {
			correct++
		}
	}
	return float64(correct) / float64(len(nodes))
}

// DegreeBin is one point of the Figure 3 profile: prediction accuracy and
// node mass for test nodes whose degree falls in [Lo, Hi).
type DegreeBin struct {
	Lo, Hi   int32
	Count    int
	Accuracy float64
	MassFrac float64 // Count / total nodes profiled (the "degree pdf")
}

// AccuracyByDegree bins the given nodes by degree (geometric bins, factor 2)
// and returns per-bin accuracy and node mass. Empty bins are omitted.
func AccuracyByDegree(g *graph.CSR, pred []int32, labels []int32, nodes []int32) []DegreeBin {
	if len(nodes) == 0 {
		return nil
	}
	maxDeg := int32(1)
	for _, v := range nodes {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	nbins := 1
	for hi := int32(1); hi < maxDeg; hi *= 2 {
		nbins++
	}
	counts := make([]int, nbins)
	correct := make([]int, nbins)
	for i, v := range nodes {
		b := binOf(g.Degree(v))
		counts[b]++
		if pred[i] == labels[v] {
			correct[b]++
		}
	}
	var out []DegreeBin
	lo := int32(0)
	hi := int32(1)
	for b := 0; b < nbins; b++ {
		if counts[b] > 0 {
			out = append(out, DegreeBin{
				Lo:       lo,
				Hi:       hi,
				Count:    counts[b],
				Accuracy: float64(correct[b]) / float64(counts[b]),
				MassFrac: float64(counts[b]) / float64(len(nodes)),
			})
		}
		lo = hi
		hi *= 2
	}
	return out
}

// binOf maps degree d to its geometric bin index: 0 for d<1, then
// bin k holds degrees in [2^(k-1), 2^k).
func binOf(d int32) int {
	if d < 1 {
		return 0
	}
	b := 1
	for hi := int32(2); hi <= d; hi *= 2 {
		b++
	}
	return b
}
