// Package cache implements GPU-resident feature caching, the transfer-
// volume reduction the paper points to as future work (§8, citing GNS and
// Zero-Copy): keep the feature rows of frequently sampled nodes in device
// memory so batch transfers only carry the misses.
//
// Two policies are provided:
//
//   - Static degree cache: pin the top-K highest-degree nodes. Node-wise
//     sampling revisits high-degree nodes with probability roughly
//     proportional to degree, so a small static cache absorbs a large
//     fraction of feature traffic on power-law graphs.
//
//   - LRU cache: classic recency eviction, as a dynamic baseline. It must
//     pay transfer for every miss anyway (the row is then resident), so its
//     advantage over static is workload drift — which node-wise sampling on
//     a fixed graph exhibits little of.
//
// The package computes exact per-batch hit statistics against real sampled
// MFGs; internal/bench uses those to quantify transfer savings and feed the
// calibrated epoch simulation (the "cacheablate" experiment).
package cache

import (
	"fmt"
	"sort"

	"salient/internal/graph"
)

// Policy identifies a cache replacement/placement policy.
type Policy int

const (
	// StaticDegree pins the top-capacity nodes by degree; no eviction.
	StaticDegree Policy = iota
	// LRU evicts the least recently used row on miss.
	LRU
)

func (p Policy) String() string {
	if p == LRU {
		return "lru"
	}
	return "static-degree"
}

// Stats accumulates cache performance over a stream of batches.
type Stats struct {
	Lookups int64
	Hits    int64
}

// HitRate returns the fraction of looked-up rows served from cache.
func (s Stats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// Cache is a device-side feature-row cache. It tracks residency only (the
// actual rows live in device memory in the modeled system); Touch reports
// whether a node's features were resident and updates the policy state.
type Cache struct {
	policy   Policy
	capacity int

	resident map[int32]*lruNode // node -> LRU entry (nil value for static)
	head     *lruNode           // most recent
	tail     *lruNode           // least recent
	stats    Stats
}

type lruNode struct {
	id         int32
	prev, next *lruNode
}

// New builds a cache of the given row capacity over graph g.
func New(g *graph.CSR, capacity int, policy Policy) (*Cache, error) {
	if capacity < 0 {
		return nil, fmt.Errorf("cache: negative capacity %d", capacity)
	}
	if capacity > int(g.N) {
		capacity = int(g.N)
	}
	c := &Cache{
		policy:   policy,
		capacity: capacity,
		resident: make(map[int32]*lruNode, capacity),
	}
	if policy == StaticDegree && capacity > 0 {
		ids := topKByDegree(g, capacity)
		for _, v := range ids {
			c.resident[v] = nil
		}
	}
	return c, nil
}

// topKByDegree returns the capacity highest-degree node IDs.
func topKByDegree(g *graph.CSR, k int) []int32 {
	ids := make([]int32, g.N)
	for i := range ids {
		ids[i] = int32(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		da, db := g.Degree(ids[a]), g.Degree(ids[b])
		if da != db {
			return da > db
		}
		return ids[a] < ids[b] // deterministic ties
	})
	return ids[:k]
}

// Capacity returns the cache's row capacity.
func (c *Cache) Capacity() int { return c.capacity }

// Len returns the number of currently resident rows.
func (c *Cache) Len() int { return len(c.resident) }

// Stats returns accumulated lookup statistics.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats clears the accumulated statistics (not residency).
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Touch records a feature-row access for node v and reports whether it hit.
// Under LRU, a miss inserts v (evicting the least recent row if full).
func (c *Cache) Touch(v int32) bool {
	c.stats.Lookups++
	n, ok := c.resident[v]
	if ok {
		c.stats.Hits++
		if c.policy == LRU {
			c.moveToFront(n)
		}
		return true
	}
	if c.policy == LRU && c.capacity > 0 {
		c.insert(v)
	}
	return false
}

// TouchBatch records accesses for all nodes of a sampled neighborhood and
// returns the number of misses (rows that must be transferred).
func (c *Cache) TouchBatch(nodeIDs []int32) (misses int) {
	for _, v := range nodeIDs {
		if !c.Touch(v) {
			misses++
		}
	}
	return misses
}

func (c *Cache) insert(v int32) {
	if len(c.resident) >= c.capacity {
		lru := c.tail
		c.unlink(lru)
		delete(c.resident, lru.id)
	}
	n := &lruNode{id: v}
	c.resident[v] = n
	c.pushFront(n)
}

func (c *Cache) moveToFront(n *lruNode) {
	if n == nil || c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}

func (c *Cache) pushFront(n *lruNode) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *Cache) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

// Resident reports whether node v's features are currently cached, without
// touching policy state or statistics.
func (c *Cache) Resident(v int32) bool {
	_, ok := c.resident[v]
	return ok
}
