package main

import (
	"flag"
	"fmt"
	"time"

	"salient/internal/cache"
	"salient/internal/dataset"
	"salient/internal/fleet"
	"salient/internal/half"
	"salient/internal/store"
)

// cliFlags holds every parsed flag value so subcommand validation sees one
// struct instead of a pile of pointers.
type cliFlags struct {
	seed        uint64
	full        bool
	allRows     bool
	tracePrefix string
	arch        string
	dataset     string
	scale       float64
	epochs      int
	executor    string
	replicas    int
	workers     int
	storeKind   string
	precision   string
	prec        half.Precision
	fused       bool
	parts       int
	placement   string
	transport   string
	hosts       int
	rate        float64
	requests    int
	maxBatch    int
	delay       time.Duration
	cacheFrac   float64
	cachePolicy string
	policy      cache.Policy
	embRows     int
	embStale    uint64
	zipf        float64
	poisson     bool
	dynamic     bool
	churn       float64
	fleet       int
	routing     string
	routePolicy fleet.Routing
	maxSkew     uint64
	resultRows  int
}

// register wires every CLI flag onto fs — the one place the flag set is
// defined, shared by every subcommand.
func (f *cliFlags) register(fs *flag.FlagSet) {
	fs.Uint64Var(&f.seed, "seed", 1, "simulation seed")
	fs.BoolVar(&f.full, "full", false, "thorough accuracy preset")
	fs.BoolVar(&f.allRows, "all", false, "fig2: full scatter")
	fs.StringVar(&f.tracePrefix, "trace", "", "fig1: write Chrome trace JSON files with this path prefix")
	fs.StringVar(&f.arch, "arch", "SAGE", "architecture for train")
	fs.StringVar(&f.dataset, "dataset", "arxiv", "dataset for train")
	fs.Float64Var(&f.scale, "scale", 0.3, "dataset scale for train")
	fs.IntVar(&f.epochs, "epochs", 5, "epochs for train")
	fs.StringVar(&f.executor, "executor", "salient", "batch-prep executor: salient|pyg")
	fs.IntVar(&f.replicas, "replicas", 1, "train: data-parallel replica count")
	fs.IntVar(&f.workers, "workers", 4, "preparation workers")
	fs.StringVar(&f.storeKind, "store", "", "feature store: flat|sharded|cached|sharded+cached (empty = subcommand default)")
	fs.StringVar(&f.precision, "precision", "fp16", "feature storage precision: fp16|fp32|int8")
	fs.BoolVar(&f.fused, "fused", false, "train: fused gather+aggregate pipeline (SAGE/GIN, salient executor)")
	fs.IntVar(&f.parts, "parts", 4, "shard count for -store sharded")
	fs.StringVar(&f.placement, "placement", "ldg", "shard placement: ldg|random")
	fs.StringVar(&f.transport, "transport", "", "train: distributed data plane: loopback|tcp (requires -replicas > 1)")
	fs.IntVar(&f.hosts, "hosts", 0, "train with -transport: partition/host count (default: -replicas)")
	fs.Float64Var(&f.rate, "rate", 0, "serve: offered rps (0 = closed loop)")
	fs.IntVar(&f.requests, "requests", 4000, "serve: request count")
	fs.IntVar(&f.maxBatch, "maxbatch", 32, "serve: micro-batch cap")
	fs.DurationVar(&f.delay, "delay", 300*time.Microsecond, "serve: coalescing deadline")
	fs.Float64Var(&f.cacheFrac, "cachefrac", 0.2, "feature cache fraction of N")
	fs.StringVar(&f.cachePolicy, "cachepolicy", "degree", "feature cache placement: degree|lru|vip")
	fs.IntVar(&f.embRows, "embrows", 0, "serve: historical layer-embedding cache rows (0 = reuse off)")
	fs.Uint64Var(&f.embStale, "embstale", 1, "serve: embedding reuse staleness window, graph versions")
	fs.Float64Var(&f.zipf, "zipf", 0, "serve: Zipf skew of request popularity (0 = cycle the test split)")
	fs.BoolVar(&f.poisson, "poisson", false, "serve: Poisson arrivals for open-loop -rate (default fixed-interval)")
	fs.BoolVar(&f.dynamic, "dynamic", false, "train/serve over a mutable dynamic graph")
	fs.Float64Var(&f.churn, "churn", 0, "with -dynamic: edge updates/sec streamed during the run")
	fs.IntVar(&f.fleet, "fleet", 0, "serve: replicated fleet size (0 = single bare server)")
	fs.StringVar(&f.routing, "routing", "hash", "serve with -fleet: request routing: hash|random")
	fs.Uint64Var(&f.maxSkew, "maxskew", 0, "serve with -fleet -dynamic: max graph-version lag before routing skips a replica (0 = unbounded)")
	fs.IntVar(&f.resultRows, "resultrows", 0, "serve with -fleet: versioned result-cache rows (0 = off)")
}

// oneOf reports whether v is among the allowed values.
func oneOf(v string, allowed ...string) bool {
	for _, a := range allowed {
		if v == a {
			return true
		}
	}
	return false
}

// distributed reports whether the run uses the multi-host data plane.
func (f *cliFlags) distributed() bool { return f.transport != "" }

// validate rejects out-of-domain flag values for the subcommands that read
// them, so a typo fails loudly instead of running with defaults.
func (f *cliFlags) validate(cmd string) error {
	switch cmd {
	case "train", "serve", "gen", "stats":
		if !oneOf(f.dataset, dataset.Arxiv, dataset.Products, dataset.Papers) {
			return fmt.Errorf("unknown -dataset %q (want arxiv, products, or papers)", f.dataset)
		}
		if f.scale <= 0 {
			return fmt.Errorf("-scale must be > 0, got %g", f.scale)
		}
	}
	switch cmd {
	case "train", "serve":
		if !oneOf(f.arch, "SAGE", "GAT", "GIN", "SAGE-RI") {
			return fmt.Errorf("unknown -arch %q (want SAGE, GAT, GIN, or SAGE-RI)", f.arch)
		}
		if f.epochs < 1 {
			return fmt.Errorf("-epochs must be >= 1, got %d", f.epochs)
		}
		if f.workers < 1 {
			return fmt.Errorf("-workers must be >= 1, got %d", f.workers)
		}
		if !store.ValidKind(f.storeKind) {
			return fmt.Errorf("unknown -store %q (want flat, sharded, cached, or sharded+cached)", f.storeKind)
		}
		prec, err := half.ParsePrecision(f.precision)
		if err != nil {
			return err
		}
		f.prec = prec
		if f.parts < 1 {
			return fmt.Errorf("-parts must be >= 1, got %d", f.parts)
		}
		if !store.ValidPlacement(f.placement) {
			return fmt.Errorf("unknown -placement %q (want ldg or random)", f.placement)
		}
		if f.cacheFrac < 0 || f.cacheFrac > 1 {
			return fmt.Errorf("-cachefrac must be in [0,1], got %g", f.cacheFrac)
		}
		policy, err := cache.ParsePolicy(f.cachePolicy)
		if err != nil {
			return err
		}
		f.policy = policy
		// An explicitly requested cache layer needs a nonzero size; a
		// zero-row cache would otherwise round into a silent default.
		if oneOf(f.storeKind, "cached", "sharded+cached") && f.cacheFrac == 0 {
			return fmt.Errorf("-store %s requires -cachefrac > 0", f.storeKind)
		}
		if f.churn < 0 {
			return fmt.Errorf("-churn must be >= 0, got %g", f.churn)
		}
		if f.churn > 0 && !f.dynamic {
			return fmt.Errorf("-churn %g requires -dynamic", f.churn)
		}
	}
	if cmd == "train" {
		if !oneOf(f.executor, "salient", "pyg") {
			return fmt.Errorf("unknown -executor %q (want salient or pyg)", f.executor)
		}
		if f.replicas < 1 {
			return fmt.Errorf("-replicas must be >= 1, got %d", f.replicas)
		}
		if f.replicas > 1 && f.executor != "salient" {
			return fmt.Errorf("-replicas %d requires -executor salient", f.replicas)
		}
		if f.fused {
			if !oneOf(f.arch, "SAGE", "GIN") {
				return fmt.Errorf("-fused requires -arch SAGE or GIN (%s has no mean/sum first layer)", f.arch)
			}
			if f.executor != "salient" {
				return fmt.Errorf("-fused requires -executor salient")
			}
			if f.replicas > 1 {
				return fmt.Errorf("-fused is single-replica only (got -replicas %d)", f.replicas)
			}
		}
		if err := f.validateDistributed(); err != nil {
			return err
		}
	} else if f.distributed() || f.hosts != 0 {
		return fmt.Errorf("-transport/-hosts apply to train only")
	}
	if cmd == "serve" {
		if f.fused {
			return fmt.Errorf("-fused applies to train only")
		}
		if f.rate < 0 {
			return fmt.Errorf("-rate must be >= 0, got %g", f.rate)
		}
		if f.requests < 1 {
			return fmt.Errorf("-requests must be >= 1, got %d", f.requests)
		}
		if f.maxBatch < 1 {
			return fmt.Errorf("-maxbatch must be >= 1, got %d", f.maxBatch)
		}
		if f.delay < 0 {
			return fmt.Errorf("-delay must be >= 0, got %v", f.delay)
		}
		if f.embRows < 0 {
			return fmt.Errorf("-embrows must be >= 0, got %d", f.embRows)
		}
		if f.embRows > 0 && !oneOf(f.arch, "SAGE", "GIN") {
			return fmt.Errorf("-embrows requires -arch SAGE or GIN (resumable forward)")
		}
		if f.zipf < 0 {
			return fmt.Errorf("-zipf must be >= 0, got %g", f.zipf)
		}
		if f.poisson && f.rate <= 0 {
			return fmt.Errorf("-poisson requires an open loop (-rate > 0)")
		}
		if f.fleet < 0 {
			return fmt.Errorf("-fleet must be >= 0, got %d", f.fleet)
		}
		pol, err := fleet.ParseRouting(f.routing)
		if err != nil {
			return err
		}
		f.routePolicy = pol
		if f.resultRows < 0 {
			return fmt.Errorf("-resultrows must be >= 0, got %d", f.resultRows)
		}
		if f.fleet == 0 && (f.maxSkew != 0 || f.resultRows != 0) {
			return fmt.Errorf("-maxskew/-resultrows require -fleet >= 1")
		}
		if f.fleet > 0 {
			if f.storeKind != "" {
				return fmt.Errorf("-fleet builds each replica's store from -cachefrac/-cachepolicy; drop -store %s", f.storeKind)
			}
			if f.maxSkew != 0 && !f.dynamic {
				return fmt.Errorf("-maxskew bounds graph-version lag and requires -dynamic")
			}
		}
	} else if f.fleet != 0 || f.maxSkew != 0 || f.resultRows != 0 {
		return fmt.Errorf("-fleet/-maxskew/-resultrows apply to serve only")
	}
	return nil
}

// validateDistributed checks the -transport/-hosts combination: each replica
// owns one partition and trains through a remote store, so the host count is
// the replica count, the store layout is the cluster's, and the fused and
// dynamic-graph paths (which need local stores/mutable topology) stay off.
func (f *cliFlags) validateDistributed() error {
	if !f.distributed() {
		if f.hosts != 0 {
			return fmt.Errorf("-hosts requires -transport loopback or tcp")
		}
		return nil
	}
	if !oneOf(f.transport, "loopback", "tcp") {
		return fmt.Errorf("unknown -transport %q (want loopback or tcp)", f.transport)
	}
	if f.replicas < 2 {
		return fmt.Errorf("-transport %s requires -replicas >= 2 (each replica owns one partition)", f.transport)
	}
	if f.hosts == 0 {
		f.hosts = f.replicas
	}
	if f.hosts != f.replicas {
		return fmt.Errorf("-hosts %d must equal -replicas %d (one partition per replica)", f.hosts, f.replicas)
	}
	if f.storeKind != "" && f.storeKind != "flat" {
		return fmt.Errorf("-transport %s builds each replica's remote store itself; drop -store %s", f.transport, f.storeKind)
	}
	if f.fused {
		return fmt.Errorf("-fused is not supported with -transport (remote stores have no fused gather)")
	}
	if f.dynamic {
		return fmt.Errorf("-dynamic is not supported with -transport (partitioned views are pinned)")
	}
	return nil
}

// resolveStore fills the per-subcommand default store kind: train reads
// flat unless told otherwise; serve keeps its historical default of a
// degree cache sized by -cachefrac.
func (f *cliFlags) resolveStore(cmd string) {
	if f.storeKind != "" {
		return
	}
	if cmd == "serve" && f.cacheFrac > 0 {
		f.storeKind = "cached"
		return
	}
	f.storeKind = "flat"
}

// cacheRows sizes the cache/mirror layer from -cachefrac, never rounded
// down to zero when the fraction is positive.
func (f *cliFlags) cacheRows(n int32) int {
	rows := int(float64(n) * f.cacheFrac)
	if rows < 1 && f.cacheFrac > 0 {
		rows = 1
	}
	return rows
}

// buildStore composes the feature store the -store/-parts/-placement flags
// describe over ds.
func buildStore(ds *dataset.Dataset, f cliFlags) (store.FeatureStore, error) {
	rows := f.cacheRows(ds.G.N)
	if rows < 1 {
		rows = 1
	}
	return store.Build(ds, store.Spec{
		Kind:        f.storeKind,
		Precision:   f.prec,
		Parts:       f.parts,
		Placement:   f.placement,
		CacheRows:   rows,
		CachePolicy: f.policy,
		Seed:        f.seed,
	})
}
