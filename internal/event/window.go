package event

import (
	"math"
	"sort"
)

// Window is a sliding-window Recorder: it keeps only the most recent
// Capacity samples, so its quantiles track the *current* behaviour of a
// long-lived process instead of its all-time integral. The serving fleet's
// admission layer uses one per replica to maintain a live service-time
// estimate (p95 of recent request latencies) that deadline feasibility
// checks can consult cheaply.
//
// Like Recorder, Window is not safe for concurrent use; callers that record
// from multiple goroutines must synchronize externally. Quantile sorts a
// private scratch copy lazily — repeated quantile reads between Adds cost
// one sort total — so interleaving admission checks with deliveries stays
// cheap.
type Window struct {
	ring    []float64
	next    int // ring insertion cursor
	scratch []float64
	dirty   bool
}

// NewWindow returns a window over the most recent capacity samples
// (minimum 1).
func NewWindow(capacity int) *Window {
	if capacity < 1 {
		capacity = 1
	}
	return &Window{ring: make([]float64, 0, capacity)}
}

// Add records one sample, evicting the oldest if the window is full.
func (w *Window) Add(v float64) {
	if len(w.ring) < cap(w.ring) {
		w.ring = append(w.ring, v)
	} else {
		w.ring[w.next] = v
	}
	w.next = (w.next + 1) % cap(w.ring)
	w.dirty = true
}

// Count returns the number of samples currently in the window.
func (w *Window) Count() int { return len(w.ring) }

// Capacity returns the window length.
func (w *Window) Capacity() int { return cap(w.ring) }

// Quantile returns the p-quantile (0 <= p <= 1) of the windowed samples
// using the nearest-rank method (the same convention as Recorder), or 0
// with no samples.
func (w *Window) Quantile(p float64) float64 {
	n := len(w.ring)
	if n == 0 {
		return 0
	}
	if w.dirty {
		w.scratch = append(w.scratch[:0], w.ring...)
		sort.Float64s(w.scratch)
		w.dirty = false
	}
	rank := int(math.Ceil(p*float64(n))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= n {
		rank = n - 1
	}
	return w.scratch[rank]
}

// Reset discards every sample (capacity is kept).
func (w *Window) Reset() {
	w.ring = w.ring[:0]
	w.next, w.dirty = 0, false
}
