// Package tensor implements the dense float32 linear algebra needed by the
// GNN layers: row-major 2-D matrices with matmul, gathers/scatters over node
// index lists, elementwise maps, and the reductions used by losses.
//
// It plays the role of the BLAS + torch.Tensor substrate in the paper's
// stack. Everything is row-major because the paper's baseline explicitly
// stores features row-major for cache-efficient slicing (§3, optimization i).
package tensor

import (
	"fmt"
	"math"
)

// Dense is a row-major matrix of float32. Rows×Cols may be 0.
type Dense struct {
	Rows, Cols int
	Data       []float32 // len == Rows*Cols
}

// New returns a zeroed Rows×Cols matrix.
func New(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dims %dx%d", rows, cols)) //lint:allow panicdiscipline dimension contract: negative dims are a programmer error, like make
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps data (not copied) as a rows×cols matrix.
func FromSlice(rows, cols int, data []float32) *Dense {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d != %d*%d", len(data), rows, cols)) //lint:allow panicdiscipline dimension contract: data/shape mismatch is a programmer error
	}
	return &Dense{Rows: rows, Cols: cols, Data: data}
}

// Clone returns a deep copy.
func (t *Dense) Clone() *Dense {
	c := New(t.Rows, t.Cols)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns t resized to rows×cols, reusing its backing array when it
// has the capacity and allocating a fresh matrix only when it does not (or
// when t is nil). Contents are unspecified after a capacity-reusing reshape;
// callers overwrite them. This is the scratch-recycling primitive the batch
// pipeline's consumers (decode targets, gradient buffers) use to stay
// allocation-free across batches whose row counts vary.
//
//salient:noalloc
func Reshape(t *Dense, rows, cols int) *Dense {
	if t == nil || cap(t.Data) < rows*cols {
		return New(rows, cols)
	}
	t.Rows, t.Cols = rows, cols
	t.Data = t.Data[:rows*cols]
	return t
}

// Row returns the i-th row as a slice aliasing the matrix storage.
func (t *Dense) Row(i int) []float32 {
	return t.Data[i*t.Cols : (i+1)*t.Cols]
}

// At returns element (i, j).
func (t *Dense) At(i, j int) float32 { return t.Data[i*t.Cols+j] }

// Set assigns element (i, j).
func (t *Dense) Set(i, j int, v float32) { t.Data[i*t.Cols+j] = v }

// Zero clears all elements in place.
func (t *Dense) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets all elements to v.
func (t *Dense) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Copy copies src into t; shapes must match.
func (t *Dense) Copy(src *Dense) {
	t.assertSameShape(src)
	copy(t.Data, src.Data)
}

func (t *Dense) assertSameShape(o *Dense) {
	if t.Rows != o.Rows || t.Cols != o.Cols {
		panic(fmt.Sprintf("tensor: shape mismatch %dx%d vs %dx%d", t.Rows, t.Cols, o.Rows, o.Cols)) //lint:allow panicdiscipline shape contract: the zero-alloc kernels document panics on shape errors
	}
}

// MatMul computes dst = a @ b. dst must be a.Rows×b.Cols and must not alias
// a or b. The kernel is the classic ikj loop order with a reused row pointer,
// which keeps the inner loop contiguous in both b and dst.
func MatMul(dst, a, b *Dense) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul inner dims %d vs %d", a.Cols, b.Rows)) //lint:allow panicdiscipline shape contract: the zero-alloc kernels document panics on shape errors
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("tensor: matmul dst shape") //lint:allow panicdiscipline shape contract: the zero-alloc kernels document panics on shape errors
	}
	dst.Zero()
	n := b.Cols
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*n : k*n+n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatMulAT computes dst = aᵀ @ b where a is m×r, b is m×c, dst is r×c.
// Used in backward passes for weight gradients (dW = xᵀ @ dy).
func MatMulAT(dst, a, b *Dense) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: matmulAT outer dims %d vs %d", a.Rows, b.Rows)) //lint:allow panicdiscipline shape contract: the zero-alloc kernels document panics on shape errors
	}
	if dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic("tensor: matmulAT dst shape") //lint:allow panicdiscipline shape contract: the zero-alloc kernels document panics on shape errors
	}
	dst.Zero()
	c := b.Cols
	for m := 0; m < a.Rows; m++ {
		arow := a.Row(m)
		brow := b.Row(m)
		for i, av := range arow {
			if av == 0 {
				continue
			}
			drow := dst.Data[i*c : i*c+c]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatMulBT computes dst = a @ bᵀ where a is m×c, b is r×c, dst is m×r.
// Used in backward passes for input gradients (dx = dy @ Wᵀ).
func MatMulBT(dst, a, b *Dense) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmulBT inner dims %d vs %d", a.Cols, b.Cols)) //lint:allow panicdiscipline shape contract: the zero-alloc kernels document panics on shape errors
	}
	if dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic("tensor: matmulBT dst shape") //lint:allow panicdiscipline shape contract: the zero-alloc kernels document panics on shape errors
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			var sum float32
			for k, av := range arow {
				sum += av * brow[k]
			}
			drow[j] = sum
		}
	}
}

// Add computes t += o elementwise.
func (t *Dense) Add(o *Dense) {
	t.assertSameShape(o)
	for i, v := range o.Data {
		t.Data[i] += v
	}
}

// Sub computes t -= o elementwise.
func (t *Dense) Sub(o *Dense) {
	t.assertSameShape(o)
	for i, v := range o.Data {
		t.Data[i] -= v
	}
}

// Mul computes t *= o elementwise (Hadamard).
func (t *Dense) Mul(o *Dense) {
	t.assertSameShape(o)
	for i, v := range o.Data {
		t.Data[i] *= v
	}
}

// Scale multiplies all elements by s.
func (t *Dense) Scale(s float32) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// AddScaled computes t += s*o.
func (t *Dense) AddScaled(o *Dense, s float32) {
	t.assertSameShape(o)
	for i, v := range o.Data {
		t.Data[i] += s * v
	}
}

// AddRowVec adds vector v (length Cols) to every row.
func (t *Dense) AddRowVec(v []float32) {
	if len(v) != t.Cols {
		panic("tensor: AddRowVec length") //lint:allow panicdiscipline shape contract: the zero-alloc kernels document panics on shape errors
	}
	for i := 0; i < t.Rows; i++ {
		row := t.Row(i)
		for j, b := range v {
			row[j] += b
		}
	}
}

// Gather copies the rows of src indexed by idx into dst (dst.Rows ==
// len(idx)). This is the feature-slicing primitive.
func Gather(dst, src *Dense, idx []int32) {
	if dst.Cols != src.Cols || dst.Rows != len(idx) {
		panic("tensor: gather shape") //lint:allow panicdiscipline shape contract: the zero-alloc kernels document panics on shape errors
	}
	for i, id := range idx {
		copy(dst.Row(i), src.Row(int(id)))
	}
}

// ScatterAdd adds the rows of src into dst at positions idx
// (dst.Row(idx[i]) += src.Row(i)). Backward of Gather.
func ScatterAdd(dst, src *Dense, idx []int32) {
	if dst.Cols != src.Cols || src.Rows != len(idx) {
		panic("tensor: scatterAdd shape") //lint:allow panicdiscipline shape contract: the zero-alloc kernels document panics on shape errors
	}
	for i, id := range idx {
		drow := dst.Row(int(id))
		srow := src.Row(i)
		for j, v := range srow {
			drow[j] += v
		}
	}
}

// ReLU applies max(0, x) in place and returns a mask usable for backward
// (1 where x>0) if mask is non-nil.
func (t *Dense) ReLU(mask []bool) {
	if mask != nil && len(mask) != len(t.Data) {
		panic("tensor: relu mask length") //lint:allow panicdiscipline shape contract: the zero-alloc kernels document panics on shape errors
	}
	for i, v := range t.Data {
		pos := v > 0
		if !pos {
			t.Data[i] = 0
		}
		if mask != nil {
			mask[i] = pos
		}
	}
}

// LeakyReLU applies x>0 ? x : slope*x in place, recording the mask.
func (t *Dense) LeakyReLU(slope float32, mask []bool) {
	if mask != nil && len(mask) != len(t.Data) {
		panic("tensor: leakyrelu mask length") //lint:allow panicdiscipline shape contract: the zero-alloc kernels document panics on shape errors
	}
	for i, v := range t.Data {
		pos := v > 0
		if !pos {
			t.Data[i] = slope * v
		}
		if mask != nil {
			mask[i] = pos
		}
	}
}

// LogSoftmaxRows applies log-softmax to each row in place, numerically
// stabilized by subtracting the row max.
func (t *Dense) LogSoftmaxRows() {
	for i := 0; i < t.Rows; i++ {
		row := t.Row(i)
		maxV := float32(math.Inf(-1))
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v - maxV))
		}
		logSum := float32(math.Log(sum)) + maxV
		for j := range row {
			row[j] -= logSum
		}
	}
}

// NLLLoss computes the mean negative log-likelihood of log-probability rows
// logp against integer labels, and (if grad non-nil) writes d(loss)/d(logp)
// into grad. Rows with label < 0 are ignored (masked nodes).
func NLLLoss(logp *Dense, labels []int32, grad *Dense) float64 {
	if len(labels) != logp.Rows {
		panic("tensor: nll labels length") //lint:allow panicdiscipline shape contract: the zero-alloc kernels document panics on shape errors
	}
	if grad != nil {
		grad.assertSameShape(logp)
		grad.Zero()
	}
	var loss float64
	n := 0
	for i, lbl := range labels {
		if lbl < 0 {
			continue
		}
		loss -= float64(logp.At(i, int(lbl)))
		n++
	}
	if n == 0 {
		return 0
	}
	if grad != nil {
		inv := float32(-1.0 / float64(n))
		for i, lbl := range labels {
			if lbl < 0 {
				continue
			}
			grad.Set(i, int(lbl), inv)
		}
	}
	return loss / float64(n)
}

// LogSoftmaxBackward computes the input gradient of log-softmax given the
// output logp and upstream gradient dOut: dIn = dOut - softmax * rowsum(dOut).
func LogSoftmaxBackward(dIn, logp, dOut *Dense) {
	dIn.assertSameShape(logp)
	dOut.assertSameShape(logp)
	for i := 0; i < logp.Rows; i++ {
		lrow := logp.Row(i)
		grow := dOut.Row(i)
		drow := dIn.Row(i)
		var sum float32
		for _, g := range grow {
			sum += g
		}
		for j := range drow {
			drow[j] = grow[j] - float32(math.Exp(float64(lrow[j])))*sum
		}
	}
}

// ArgmaxRows writes the index of the max element of each row into out.
func (t *Dense) ArgmaxRows(out []int32) {
	if len(out) != t.Rows {
		panic("tensor: argmax out length") //lint:allow panicdiscipline shape contract: the zero-alloc kernels document panics on shape errors
	}
	for i := 0; i < t.Rows; i++ {
		row := t.Row(i)
		best, bestJ := float32(math.Inf(-1)), 0
		for j, v := range row {
			if v > best {
				best, bestJ = v, j
			}
		}
		out[i] = int32(bestJ)
	}
}

// Norm2 returns the Frobenius norm.
func (t *Dense) Norm2() float64 {
	var s float64
	for _, v := range t.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// MaxAbsDiff returns the max elementwise absolute difference between t and o.
func (t *Dense) MaxAbsDiff(o *Dense) float64 {
	t.assertSameShape(o)
	var m float64
	for i := range t.Data {
		d := math.Abs(float64(t.Data[i] - o.Data[i]))
		if d > m {
			m = d
		}
	}
	return m
}
