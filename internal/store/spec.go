package store

import (
	"fmt"

	"salient/internal/cache"
	"salient/internal/dataset"
	"salient/internal/half"
	"salient/internal/partition"
)

// Spec selects a store composition from flag-style inputs, so command-line
// front ends (cmd/salient) and sweeps can describe a store declaratively.
type Spec struct {
	// Kind is "flat", "sharded", "cached" (cache over the flat layout), or
	// "sharded+cached" (cache over a sharded layout).
	Kind string
	// Parts is the shard count for sharded layouts. Default 4.
	Parts int
	// Placement picks the sharding assignment: "ldg" (default) or "random".
	Placement string
	// CacheRows is the cached-store residency capacity. Default NumNodes/5.
	CacheRows int
	// CachePolicy selects the replacement policy for cached stores.
	CachePolicy cache.Policy
	// PerShardCache splits the cache budget per shard (sharded+cached only).
	PerShardCache bool
	// CacheRefreshEvery rate-limits cache re-placement under churn (see
	// CacheOptions.RefreshEvery).
	CacheRefreshEvery uint64
	// Seed keys random placement.
	Seed uint64
	// Precision is the storage precision of the feature rows (zero value
	// fp16, the seed layout).
	Precision half.Precision
}

// ValidKind reports whether k names a composition Build accepts (empty
// selects flat). Front ends use it to reject typos before loading data.
func ValidKind(k string) bool {
	switch k {
	case "", "flat", "sharded", "cached", "sharded+cached":
		return true
	}
	return false
}

// ValidPlacement reports whether p names a sharding placement Build accepts
// (empty selects LDG).
func ValidPlacement(p string) bool {
	switch p {
	case "", "ldg", "random":
		return true
	}
	return false
}

// Build composes the store spec over ds.
func Build(ds *dataset.Dataset, spec Spec) (FeatureStore, error) {
	if !spec.Precision.Valid() {
		return nil, fmt.Errorf("store: invalid precision %d", spec.Precision)
	}
	sharded := func() (FeatureStore, error) {
		if !ValidPlacement(spec.Placement) {
			return nil, fmt.Errorf("store: unknown placement %q (want ldg or random)", spec.Placement)
		}
		parts := spec.Parts
		if parts == 0 {
			parts = 4
		}
		var a *partition.Assignment
		var err error
		if spec.Placement == "random" {
			a, err = partition.Random(ds.G, parts, spec.Seed)
		} else {
			a, err = partition.LDG(ds.G, parts)
		}
		if err != nil {
			return nil, err
		}
		return NewShardedPrec(ds, a, spec.Precision)
	}
	var base FeatureStore
	var err error
	switch spec.Kind {
	case "", "flat":
		return NewFlatPrec(ds, spec.Precision), nil
	case "sharded":
		return sharded()
	case "cached":
		base = NewFlatPrec(ds, spec.Precision)
	case "sharded+cached":
		if base, err = sharded(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("store: unknown store kind %q (want flat, sharded, cached, or sharded+cached)", spec.Kind)
	}
	rows := spec.CacheRows
	if rows == 0 {
		rows = base.NumNodes() / 5
	}
	if spec.PerShardCache && spec.Kind != "sharded+cached" {
		return nil, fmt.Errorf("store: per-shard cache budgets need kind sharded+cached, got %q", spec.Kind)
	}
	return NewCachedOpts(base, ds.G, CacheOptions{
		Rows:         rows,
		Policy:       spec.CachePolicy,
		PerShard:     spec.PerShardCache,
		RefreshEvery: spec.CacheRefreshEvery,
	})
}
