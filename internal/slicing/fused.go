// Fused gather+aggregate kernels: the raw-speed pass on the per-batch data
// path (paper §3 baseline optimization iii, §4.2). The staged path touches a
// batch's stored feature bytes three times — Slice copies storage-width rows
// into Pinned, DecodeFeatures widens them to float32, and the first GNN
// layer's aggregation makes a third pass. For mean/sum first layers the
// staged half/int8 tensor is never needed: GatherAggregate folds stored
// rows into the NumDst×dim aggregate plus the x_target prefix the root/self
// term needs. Flat float32 rows need no per-scalar conversion, so that
// layout aggregates straight out of the master array; fp16/int8 rows widen
// exactly once per unique source into a recycled float32 working set (a
// sampled batch's sources are heavily deduplicated — each unique row feeds
// many edges, so converting per edge would multiply the widening work by
// the average in-degree) and destinations aggregate from it. Either way the
// Pinned staging copy disappears, and only the two NumDst×dim float32
// tensors leave the kernel — far smaller than the staged NumSrc×dim buffer.
//
// Bit-exactness contract: for each destination the fused kernel accumulates
// neighbors in Block edge order — the identical order nn's
// aggregateMeanBlock/aggregateSumBlock walk — and widens rows with the exact
// expressions DecodeFeatures uses (fp16→f32 widening is exact; int8 rows
// dequantize as float32(q)·scale). Fused output is therefore bit-identical
// to the staged Decode→aggregate oracle, serial or striped (striping splits
// the destination range, never a destination's neighbor list).
package slicing

import (
	"fmt"

	"salient/internal/half"
	"salient/internal/mfg"
	"salient/internal/tensor"
)

// AggOp selects the first-layer aggregation a fused gather performs. The
// zero value AggNone means "not fused" so option structs default to the
// staged path.
type AggOp int

const (
	AggNone AggOp = iota
	AggMean       // GraphSAGE: mean over sampled in-neighbors
	AggSum        // GIN: sum over sampled in-neighbors
)

// String returns the op name.
func (op AggOp) String() string {
	switch op {
	case AggMean:
		return "mean"
	case AggSum:
		return "sum"
	default:
		return "none"
	}
}

// Fused is the staging target of a fused gather+aggregate: everything the
// first mean/sum GNN layer needs from the raw features, with the
// NumSrc×dim staged tensor skipped entirely.
//
// Agg holds the per-destination float32 aggregate over Block edge order; XT
// holds the widened x_target prefix (destination nodes are a prefix of
// source nodes, so rows [0,NumDst) are the self/root inputs). All buffers
// recycle their backing arrays across batches (tensor.Reshape). Only Agg,
// XT, and Labels are batch payload; for fanout f the staged path ships
// NumSrc ≈ NumDst×(f+1) storage-width rows, so fused batches also shrink
// the host-to-device transfer.
type Fused struct {
	Op     AggOp
	Agg    *tensor.Dense // NumDst × Dim aggregated neighbor features
	XT     *tensor.Dense // NumDst × Dim widened x_target rows
	Labels []int32       // seed labels
	NumDst int
	Dim    int
	// scratch is the NumSrc×dim widened working set: each stored row decodes
	// into it exactly once, then destinations aggregate from its cache-hot
	// float32 rows. Kernel-internal; never transferred. The direct float32
	// path leaves it nil.
	scratch *tensor.Dense
	// stageH/stageQ are storage-width staging strips for the widen phase:
	// scattered master rows are first copied here, then the whole hot strip
	// converts to float32 in one bulk pass. Splitting the scattered loads
	// from the branchy per-scalar conversion lets the copy loop keep many
	// cache misses in flight, where converting at the scattered rows would
	// serialize on one miss per row. Kernel-internal, recycled, and only the
	// strip matching the store's precision is ever grown.
	stageH []half.Float16
	stageQ []int8
}

// Ensure shapes the staging tensors and label buffer for a batch, recycling
// backing arrays grown on earlier batches.
//
//salient:noalloc
func (f *Fused) Ensure(nDst, dim, batch int) {
	f.Agg = tensor.Reshape(f.Agg, nDst, dim)
	f.XT = tensor.Reshape(f.XT, nDst, dim)
	if cap(f.Labels) < batch {
		f.Labels = make([]int32, batch)
	}
	f.Labels = f.Labels[:batch]
	f.NumDst = nDst
	f.Dim = dim
}

// ensureScratch shapes the generic path's widened working set and the
// precision-matched staging strip, recycling both across batches. Growth
// happens here — before any striping — so concurrent widen stripes only ever
// write disjoint ranges of fixed-size buffers. The direct flat-source kernels
// never touch either, so those stores carry no working-set footprint at all.
//
//salient:noalloc
func (f *Fused) ensureScratch(src Source, nSrc int) {
	f.scratch = tensor.Reshape(f.scratch, nSrc, f.Dim)
	switch src.(type) {
	case flatSource:
		if cap(f.stageH) < nSrc*f.Dim {
			f.stageH = make([]half.Float16, nSrc*f.Dim)
		}
		f.stageH = f.stageH[:nSrc*f.Dim]
	case int8Source:
		if cap(f.stageQ) < nSrc*f.Dim {
			f.stageQ = make([]int8, nSrc*f.Dim)
		}
		f.stageQ = f.stageQ[:nSrc*f.Dim]
	}
}

// Bytes returns the host-to-device payload of the fused staging: the two
// float32 NumDst×dim tensors plus labels.
func (f *Fused) Bytes() int64 {
	var n int64
	if f.Agg != nil {
		n += int64(len(f.Agg.Data)) * 4
	}
	if f.XT != nil {
		n += int64(len(f.XT.Data)) * 4
	}
	return n + int64(len(f.Labels))*4
}

// GatherAggregate is the fused serial kernel: for the outermost block blk of
// a sampled MFG (whose source-local IDs index nodeIDs), fold each
// destination's mean/sum neighbor aggregate and the x_target prefix directly
// from src's stored rows, plus the seed-prefix labels. Flat float32 runs
// the direct kernel; other layouts widen each unique row once into the
// recycled working set and aggregate from it. No pinned staging copy either
// way.
//
//salient:noalloc
func GatherAggregate(dst *Fused, src Source, nodeIDs []int32, blk *mfg.Block, batch int, op AggOp) error {
	if err := checkFused(src, nodeIDs, blk, batch, op); err != nil {
		return err
	}
	dst.Ensure(int(blk.NumDst), src.Dim(), batch)
	dst.Op = op
	if !fuseDirect(dst, src, nodeIDs, blk, op, 0, int(blk.NumDst)) {
		dst.ensureScratch(src, len(nodeIDs))
		widenRange(dst, src, nodeIDs, 0, len(nodeIDs))
		fuseRange(dst, blk, op, 0, int(blk.NumDst))
	}
	for i := 0; i < batch; i++ {
		dst.Labels[i] = src.Label(nodeIDs[i])
	}
	return nil
}

// GatherAggregateStriped is the fused kernel with the work split into
// nWorkers static stripes run by the provided runner (the striped
// counterpart of SliceStriped). Flat float32 stripes the destination range
// of the direct kernel; other sources run two striped phases — widen the
// source rows into the working set, then aggregate the destination range.
// Each destination's neighbor accumulation stays whole and in edge order
// inside one stripe, so the result is bit-identical to the serial kernel.
func GatherAggregateStriped(dst *Fused, src Source, nodeIDs []int32, blk *mfg.Block, batch int, op AggOp, nWorkers int, run func(stripes []func())) error {
	if err := checkFused(src, nodeIDs, blk, batch, op); err != nil {
		return err
	}
	if nWorkers < 1 {
		nWorkers = 1
	}
	dst.Ensure(int(blk.NumDst), src.Dim(), batch)
	dst.Op = op
	stripe := func(n int, body func(lo, hi int)) {
		stripes := make([]func(), 0, nWorkers)
		for w := 0; w < nWorkers; w++ {
			lo := n * w / nWorkers
			hi := n * (w + 1) / nWorkers
			if lo == hi {
				continue
			}
			stripes = append(stripes, func() { body(lo, hi) })
		}
		run(stripes)
	}
	if directLayout(src) {
		stripe(int(blk.NumDst), func(lo, hi int) {
			fuseDirect(dst, src, nodeIDs, blk, op, lo, hi)
		})
	} else {
		dst.ensureScratch(src, len(nodeIDs))
		stripe(len(nodeIDs), func(lo, hi int) {
			widenRange(dst, src, nodeIDs, lo, hi)
		})
		stripe(int(blk.NumDst), func(lo, hi int) {
			fuseRange(dst, blk, op, lo, hi)
		})
	}
	for i := 0; i < batch; i++ {
		dst.Labels[i] = src.Label(nodeIDs[i])
	}
	return nil
}

// checkFused validates the fused-gather arguments: the block must be the
// MFG's outermost (its sources index nodeIDs), and op must aggregate.
func checkFused(src Source, nodeIDs []int32, blk *mfg.Block, batch int, op AggOp) error {
	if op != AggMean && op != AggSum {
		return fmt.Errorf("slicing: fused gather needs AggMean or AggSum, got %v", op)
	}
	if batch > len(nodeIDs) {
		return fmt.Errorf("slicing: batch %d > nodes %d", batch, len(nodeIDs))
	}
	if int(blk.NumSrc) != len(nodeIDs) {
		return fmt.Errorf("slicing: fused gather block has %d sources, %d node IDs (not the outermost block?)", blk.NumSrc, len(nodeIDs))
	}
	if batch > int(blk.NumDst) {
		return fmt.Errorf("slicing: batch %d > block destinations %d", batch, blk.NumDst)
	}
	return nil
}

// widenRange decodes stored rows [lo,hi) of nodeIDs into the float32
// working set — each stored row is read exactly once, through one accessor
// call per row with the precision dispatch hoisted out of the loop. The
// widening expressions are the ones DecodeFeatures uses (exact fp16→f32
// widening; int8 as float32(q)·scale via DequantizeRow), so the working-set
// values are bit-identical to the staged path's decoded tensor.
//
// directLayout reports whether src is a layout the fused kernel aggregates
// straight out of, with no widened working set: only the flat float32
// layout qualifies. Its rows need no per-scalar conversion, so re-reading a
// row per edge costs nothing extra; for fp16/int8 a sampled batch's heavy
// source deduplication (each unique row feeds many edges) would multiply
// the widening work by the average in-degree, so those layouts widen each
// unique row once into scratch instead.
func directLayout(src Source) bool {
	_, ok := src.(flat32Source)
	return ok
}

// fuseDirect computes aggregate and x_target rows for destinations [lo,hi)
// straight from the flat float32 master array — no scratch working set, no
// per-row interface calls, and the only writes are the NumDst×dim output
// tensors. Neighbors accumulate in Block edge order from the identical
// float32 values the staged path decodes, so the result is bit-identical to
// the staged oracle and to the scratch-based generic path. Returns false
// (having written nothing) when src is not the flat float32 layout.
//
//salient:noalloc
func fuseDirect(dst *Fused, src Source, nodeIDs []int32, blk *mfg.Block, op AggOp, lo, hi int) bool {
	s, ok := src.(flat32Source)
	if !ok {
		return false
	}
	aggD, xtD := dst.Agg.Data, dst.XT.Data
	feat, dim := s.feat, s.dim
	for v := lo; v < hi; v++ {
		r := int(nodeIDs[v]) * dim
		copy(xtD[v*dim:(v+1)*dim], feat[r:r+dim])
		orow := aggD[v*dim : (v+1)*dim]
		ns := blk.Neighbors(int32(v))
		n := len(ns)
		if n == 0 {
			for j := range orow {
				orow[j] = 0
			}
			continue
		}
		// The first neighbor initializes the row as 0+f — the oracle's
		// zero-then-accumulate bit for bit (including f == -0, where a plain
		// copy would write -0 instead of +0) with one less pass over the
		// aggregate.
		r = int(nodeIDs[ns[0]]) * dim
		xrow := feat[r : r+dim]
		for j, f := range xrow {
			orow[j] = 0 + f
		}
		rest := ns[1:]
		if op == AggMean && n > 1 {
			rest = ns[1 : n-1]
		}
		for _, u := range rest {
			r := int(nodeIDs[u]) * dim
			xrow := feat[r : r+dim]
			for j, f := range xrow {
				orow[j] += f
			}
		}
		if op == AggMean && n > 1 {
			// Fold the mean normalization into the last neighbor: the adds
			// and the multiply happen in the oracle's order — (sum+f)·inv is
			// sum-then-scale with the final pass over the row elided. n == 1
			// needs no pass at all: inv is exactly 1.
			inv := 1 / float32(n)
			r = int(nodeIDs[ns[n-1]]) * dim
			xrow = feat[r : r+dim]
			for j, f := range xrow {
				orow[j] = (orow[j] + f) * inv
			}
		}
	}
	return true
}

//salient:noalloc
func widenRange(dst *Fused, src Source, nodeIDs []int32, lo, hi int) {
	x := dst.scratch
	// Devirtualize this package's own flat layouts: bulk row copies into the
	// staging strip, then one bulk conversion over the hot bytes — instead of
	// an interface dispatch per row. Any other Source takes the generic
	// accessor path below.
	switch s := src.(type) {
	case flatSource:
		feat, dim := s.feat, s.dim
		stage := dst.stageH
		for i := lo; i < hi; i++ {
			r := int(nodeIDs[i]) * dim
			copy(stage[i*dim:(i+1)*dim], feat[r:r+dim])
		}
		half.DecodeSlice(x.Data[lo*dim:hi*dim], stage[lo*dim:hi*dim])
		return
	case int8Source:
		feat, scales, dim := s.feat, s.scales, s.dim
		stage := dst.stageQ
		for i := lo; i < hi; i++ {
			r := int(nodeIDs[i]) * dim
			copy(stage[i*dim:(i+1)*dim], feat[r:r+dim])
		}
		for i := lo; i < hi; i++ {
			half.DequantizeRow(x.Data[i*dim:(i+1)*dim], stage[i*dim:(i+1)*dim], scales[nodeIDs[i]])
		}
		return
	}
	switch src.Precision() {
	case half.FP32:
		for i := lo; i < hi; i++ {
			copy(x.Row(i), src.Row32(nodeIDs[i]))
		}
	case half.Int8:
		for i := lo; i < hi; i++ {
			q, scale := src.Row8(nodeIDs[i])
			half.DequantizeRow(x.Row(i), q, scale)
		}
	default:
		for i := lo; i < hi; i++ {
			xrow := x.Row(i)
			for j, h := range src.Row(nodeIDs[i]) {
				xrow[j] = h.Float32()
			}
		}
	}
}

// fuseRange computes aggregate and x_target rows for destinations [lo,hi)
// from the widened working set — the shared body of the serial and striped
// fused kernels. Pure float32 adds over cache-hot rows; destination nodes
// are a source prefix, so row v of the working set is destination v's self
// row.
//
//salient:noalloc
func fuseRange(dst *Fused, blk *mfg.Block, op AggOp, lo, hi int) {
	// Hoist the backing arrays into locals: slice headers reached through the
	// Dense pointers would otherwise reload on every iteration (the compiler
	// cannot prove Neighbors leaves them unchanged).
	dim := dst.Dim
	aggD, xtD, xD := dst.Agg.Data, dst.XT.Data, dst.scratch.Data
	// Destination self rows are the working set's prefix, so the stripe's
	// whole x_target block is one contiguous copy instead of a copy per row.
	copy(xtD[lo*dim:hi*dim], xD[lo*dim:hi*dim])
	for v := lo; v < hi; v++ {
		orow := aggD[v*dim : (v+1)*dim]
		ns := blk.Neighbors(int32(v))
		n := len(ns)
		if n == 0 {
			for j := range orow {
				orow[j] = 0
			}
			continue
		}
		// First neighbor initializes (0+f ≡ the oracle's zero-then-add, -0
		// included); for mean the last neighbor's add carries the 1/deg scale
		// — see fuseDirect for the bit-identity argument.
		xrow := xD[int(ns[0])*dim : (int(ns[0])+1)*dim]
		for j, f := range xrow {
			orow[j] = 0 + f
		}
		rest := ns[1:]
		if op == AggMean && n > 1 {
			rest = ns[1 : n-1]
		}
		for _, u := range rest {
			xrow := xD[int(u)*dim : (int(u)+1)*dim]
			for j, f := range xrow {
				orow[j] += f
			}
		}
		if op == AggMean && n > 1 {
			inv := 1 / float32(n)
			u := int(ns[n-1])
			xrow := xD[u*dim : (u+1)*dim]
			for j, f := range xrow {
				orow[j] = (orow[j] + f) * inv
			}
		}
	}
}
