package event

import (
	"testing"
	"testing/quick"
)

func TestSerialFIFOQueueing(t *testing.T) {
	s := NewSerial("stream")
	st, en := s.Run(0, 2)
	if st != 0 || en != 2 {
		t.Fatalf("first task: (%v,%v), want (0,2)", st, en)
	}
	// Ready before the stream is free: queues behind.
	st, en = s.Run(1, 3)
	if st != 2 || en != 5 {
		t.Fatalf("queued task: (%v,%v), want (2,5)", st, en)
	}
	// Ready after the stream is free: starts at ready.
	st, en = s.Run(10, 1)
	if st != 10 || en != 11 {
		t.Fatalf("late task: (%v,%v), want (10,11)", st, en)
	}
	if s.Busy() != 6 {
		t.Fatalf("busy = %v, want 6", s.Busy())
	}
	if u := s.Utilization(12); u != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", u)
	}
	if s.Utilization(0) != 0 {
		t.Fatal("zero-horizon utilization should be 0")
	}
}

func TestSerialStartNeverBeforeReadyOrPrevEnd(t *testing.T) {
	f := func(durs []float64) bool {
		s := NewSerial("q")
		prevEnd := 0.0
		ready := 0.0
		for _, d := range durs {
			if d < 0 {
				d = -d
			}
			if d > 1e6 {
				continue
			}
			ready += d / 3
			st, en := s.Run(ready, d)
			if st < ready || st < prevEnd || en != st+d {
				return false
			}
			prevEnd = en
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPoolDynamicPicksEarliestWorker(t *testing.T) {
	p := NewPool("w", 2)
	_, _, w0 := p.RunDynamic(0, 5) // worker 0 busy until 5
	_, _, w1 := p.RunDynamic(0, 1) // worker 1 busy until 1
	if w0 == w1 {
		t.Fatalf("both tasks placed on worker %d", w0)
	}
	st, en, w := p.RunDynamic(0, 1)
	if w != w1 || st != 1 || en != 2 {
		t.Fatalf("third task: worker %d (%v,%v), want worker %d (1,2)", w, st, en, w1)
	}
}

func TestPoolStaticAssignmentIgnoresLoad(t *testing.T) {
	p := NewPool("w", 2)
	p.RunOn(0, 0, 10)
	st, _ := p.RunOn(0, 0, 1) // stacks on the busy worker
	if st != 10 {
		t.Fatalf("static task started at %v, want 10", st)
	}
	if f := p.FreeAt(1); f != 0 {
		t.Fatalf("idle worker free at %v, want 0", f)
	}
}

func TestPoolDynamicBeatsStaticOnSkewedWork(t *testing.T) {
	// The §4.2 argument: with variable batch sizes, dynamic balancing
	// finishes no later than static round-robin.
	durs := []float64{9, 1, 1, 1, 9, 1, 1, 1}
	dyn := NewPool("dyn", 2)
	stat := NewPool("stat", 2)
	var dynEnd, statEnd float64
	for i, d := range durs {
		_, e, _ := dyn.RunDynamic(0, d)
		if e > dynEnd {
			dynEnd = e
		}
		_, e2 := stat.RunOn(i%2, 0, d)
		if e2 > statEnd {
			statEnd = e2
		}
	}
	if dynEnd > statEnd {
		t.Fatalf("dynamic (%v) slower than static (%v)", dynEnd, statEnd)
	}
	if statEnd != 20 || dynEnd != 12 {
		t.Fatalf("expected static 20 / dynamic 12, got %v / %v", statEnd, dynEnd)
	}
}

func TestPoolConservation(t *testing.T) {
	// Property: total busy time equals the sum of durations, no matter the
	// placement policy.
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		p := NewPool("w", 3)
		var sum float64
		for i, r := range raw {
			d := float64(r) / 16
			sum += d
			if i%2 == 0 {
				p.RunDynamic(0, d)
			} else {
				p.RunOn(i%3, 0, d)
			}
		}
		return abs(p.Busy()-sum) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestEarliestFree(t *testing.T) {
	p := NewPool("w", 3)
	p.RunOn(0, 0, 5)
	p.RunOn(1, 0, 2)
	if got := p.EarliestFree(); got != 0 {
		t.Fatalf("earliest free = %v, want 0 (worker 2 idle)", got)
	}
	p.RunOn(2, 0, 7)
	if got := p.EarliestFree(); got != 2 {
		t.Fatalf("earliest free = %v, want 2", got)
	}
}

func TestMaxHelpers(t *testing.T) {
	if Max(1, 2) != 2 || Max(3, 2) != 3 {
		t.Fatal("Max broken")
	}
	if MaxAll(1, 5, 3) != 5 || MaxAll(-2) != -2 {
		t.Fatal("MaxAll broken")
	}
}

func TestPoolPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 0-worker pool")
		}
	}()
	NewPool("bad", 0)
}
