package nn

import (
	"bytes"
	"path/filepath"
	"testing"

	"salient/internal/rng"
)

func twoModels() (Model, Model) {
	cfg := ModelConfig{In: 8, Hidden: 16, Out: 4, Layers: 2, Seed: 1}
	a := NewGraphSAGE(cfg)
	cfg.Seed = 99 // different init
	b := NewGraphSAGE(cfg)
	return a, b
}

func TestCheckpointRoundTrip(t *testing.T) {
	a, b := twoModels()
	// Perturb a's weights so they differ from any fresh init.
	r := rng.New(5)
	for _, p := range a.Params() {
		for i := range p.W.Data {
			p.W.Data[i] += r.Float32()
		}
	}
	var buf bytes.Buffer
	if err := SaveParams(&buf, a.Params()); err != nil {
		t.Fatal(err)
	}
	if err := LoadParams(&buf, b.Params()); err != nil {
		t.Fatal(err)
	}
	for i, p := range a.Params() {
		if d := p.W.MaxAbsDiff(b.Params()[i].W); d != 0 {
			t.Fatalf("param %s differs by %v after restore", p.Name, d)
		}
	}
}

func TestCheckpointRejectsMismatchedModel(t *testing.T) {
	a, _ := twoModels()
	var buf bytes.Buffer
	if err := SaveParams(&buf, a.Params()); err != nil {
		t.Fatal(err)
	}
	other := NewGraphSAGE(ModelConfig{In: 8, Hidden: 32, Out: 4, Layers: 2, Seed: 1})
	if err := LoadParams(bytes.NewReader(buf.Bytes()), other.Params()); err == nil {
		t.Fatal("shape mismatch accepted")
	}
	gat := NewGAT(ModelConfig{In: 8, Hidden: 16, Out: 4, Layers: 2, Seed: 1})
	if err := LoadParams(bytes.NewReader(buf.Bytes()), gat.Params()); err == nil {
		t.Fatal("wrong architecture accepted")
	}
}

func TestCheckpointRejectsCorruption(t *testing.T) {
	a, b := twoModels()
	var buf bytes.Buffer
	if err := SaveParams(&buf, a.Params()); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)/2] ^= 0x55
	if err := LoadParams(bytes.NewReader(raw), b.Params()); err == nil {
		t.Fatal("corrupted checkpoint accepted")
	}
	if err := LoadParams(bytes.NewReader(raw[:8]), b.Params()); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
}

func TestCheckpointFile(t *testing.T) {
	a, b := twoModels()
	path := filepath.Join(t.TempDir(), "model.ckpt")
	if err := SaveParamsFile(path, a.Params()); err != nil {
		t.Fatal(err)
	}
	if err := LoadParamsFile(path, b.Params()); err != nil {
		t.Fatal(err)
	}
	for i, p := range a.Params() {
		if d := p.W.MaxAbsDiff(b.Params()[i].W); d != 0 {
			t.Fatalf("param %s differs after file round trip", p.Name)
		}
	}
	if err := LoadParamsFile(filepath.Join(t.TempDir(), "nope.ckpt"), b.Params()); err == nil {
		t.Fatal("missing file accepted")
	}
}
