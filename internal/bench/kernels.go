package bench

import (
	"encoding/json"
	"fmt"
	"io"

	"salient/internal/dataset"
	"salient/internal/half"
	"salient/internal/mfg"
	"salient/internal/prep"
	"salient/internal/rng"
	"salient/internal/sampler"
	"salient/internal/slicing"
	"salient/internal/store"
	"salient/internal/tensor"
)

// KernelOpts configures the precision × gather-pipeline kernel sweep (the
// `kernels` registry experiment).
type KernelOpts struct {
	Scale     float64 // arxiv stand-in scale
	BatchSize int
	Fanouts   []int
	Rounds    int // timed passes over the batch set per configuration
	Seed      uint64
}

// kernelReps is how many interleaved timed repetitions each (precision,
// pipeline) cell runs; the reported row is the cell's fastest repetition.
const kernelReps = 3

func (o *KernelOpts) defaults() {
	if o.Scale == 0 {
		o.Scale = 0.1
	}
	if o.BatchSize == 0 {
		o.BatchSize = 256
	}
	if len(o.Fanouts) == 0 {
		o.Fanouts = []int{10, 5}
	}
	if o.Rounds == 0 {
		o.Rounds = 3
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// KernelResult is one measured (precision, pipeline) cell: the cost of
// producing the layer-0 aggregated tensors from stored feature rows.
type KernelResult struct {
	Precision string  `json:"precision"`
	Pipeline  string  `json:"pipeline"` // "staged" or "fused"
	Batches   int     `json:"batches"`
	UsPerB    float64 `json:"us_per_batch"`
	KBMovedPB float64 `json:"kb_moved_per_batch"` // store bytes per batch
	AllocsPB  float64 `json:"allocs_per_batch"`
}

// kernelResults measures, for each storage precision and both pipelines, the
// full cost of producing the first GNN layer's inputs (the mean-aggregated
// neighbor tensor plus the seeds' own rows):
//
//   - staged: Gather into a pinned buffer, decode it to float32, then
//     aggregate — feature bytes are touched three times (§3's opt iii is
//     about exactly this traffic);
//   - fused: GatherAggregate — stored rows are read once and accumulated
//     straight into the output tensors.
//
// Both pipelines run the identical pre-sampled batch set through the same
// flat store, so rows differ only in precision (storage bytes) and pipeline
// (bytes touched), and the fused results are bit-identical to staged ones
// (pinned by the slicing and train test suites, not re-verified here).
func kernelResults(o KernelOpts) ([]KernelResult, error) {
	o.defaults()
	ds, err := dataset.Load(dataset.Arxiv, o.Scale)
	if err != nil {
		return nil, err
	}
	// Pre-sampled batch set, shared by every configuration.
	sm := sampler.New(ds.G, o.Fanouts, sampler.FastConfig())
	nb := prep.NumBatches(len(ds.Train), o.BatchSize)
	if nb > 16 {
		nb = 16
	}
	mfgs := make([]*mfg.MFG, nb)
	batches := make([]int, nb)
	for i := range mfgs {
		lo := i * o.BatchSize
		hi := lo + o.BatchSize
		if hi > len(ds.Train) {
			hi = len(ds.Train)
		}
		mfgs[i] = sm.Sample(rng.New(o.Seed+uint64(i)), ds.Train[lo:hi]).Clone()
		batches[i] = hi - lo
	}
	maxRows, maxDst := 0, 0
	for _, m := range mfgs {
		if n := len(m.NodeIDs); n > maxRows {
			maxRows = n
		}
		if n := int(m.Blocks[0].NumDst); n > maxDst {
			maxDst = n
		}
	}

	var out []KernelResult
	for _, prec := range []half.Precision{half.FP16, half.FP32, half.Int8} {
		st := store.NewFlatPrec(ds, prec)
		buf := slicing.NewPinned(maxRows, ds.FeatDim, o.BatchSize)
		var x *tensor.Dense
		agg := tensor.New(maxDst, ds.FeatDim)
		xt := tensor.New(maxDst, ds.FeatDim)
		stagedPass := func() (int, error) {
			n := 0
			for r := 0; r < o.Rounds; r++ {
				for i, m := range mfgs {
					if err := st.Gather(buf, m.NodeIDs, batches[i]); err != nil {
						return n, err
					}
					x = slicing.DecodeInto(x, buf)
					stagedAggregate(agg, xt, x, &m.Blocks[0])
					n++
				}
			}
			return n, nil
		}
		var fused slicing.Fused
		fusedPass := func() (int, error) {
			n := 0
			for r := 0; r < o.Rounds; r++ {
				for i, m := range mfgs {
					if err := st.GatherAggregate(&fused, m.NodeIDs, &m.Blocks[0], batches[i], slicing.AggMean); err != nil {
						return n, err
					}
					n++
				}
			}
			return n, nil
		}
		pipelines := []struct {
			name string
			pass func() (int, error)
		}{{"staged", stagedPass}, {"fused", fusedPass}}
		// Warm-up pass per pipeline: buffer growth stays out of the
		// measurement.
		for _, p := range pipelines {
			if _, err := p.pass(); err != nil {
				return nil, fmt.Errorf("kernels: %s/%s warm-up: %w", prec, p.name, err)
			}
		}
		// Interleave the repetitions (staged, fused, staged, fused, ...) and
		// keep each pipeline's best: CPU frequency drift over the sweep then
		// biases both cells equally instead of penalizing whichever pipeline
		// runs later.
		best := make([]KernelResult, len(pipelines))
		for rep := 0; rep < kernelReps; rep++ {
			for k, p := range pipelines {
				st.ResetStats()
				row, err := measureRow(p.pass)
				if err != nil {
					return nil, fmt.Errorf("kernels: %s/%s: %w", prec, p.name, err)
				}
				ss := st.Stats()
				res := KernelResult{
					Precision: prec.String(),
					Pipeline:  p.name,
					Batches:   row.batches,
					UsPerB:    row.usPerB,
					KBMovedPB: float64(ss.BytesMoved) / 1024 / float64(row.batches),
					AllocsPB:  row.allocsPer,
				}
				if rep == 0 || res.UsPerB < best[k].UsPerB {
					best[k] = res
				}
			}
		}
		out = append(out, best...)
	}
	return out, nil
}

// stagedAggregate is the unfused reference computation over a decoded batch:
// mean of each destination's neighbor rows into agg, the destination's own
// row into xt, for every destination of the outermost block — the work the
// first SAGE layer does from a staged tensor.
func stagedAggregate(agg, xt, x *tensor.Dense, blk *mfg.Block) {
	dim := x.Cols
	for v := 0; v < int(blk.NumDst); v++ {
		copy(xt.Data[v*dim:(v+1)*dim], x.Data[v*dim:(v+1)*dim])
		orow := agg.Data[v*dim : (v+1)*dim]
		for j := range orow {
			orow[j] = 0
		}
		ns := blk.Neighbors(int32(v))
		for _, s := range ns {
			srow := x.Data[int(s)*dim : (int(s)+1)*dim]
			for j, f := range srow {
				orow[j] += f
			}
		}
		if len(ns) > 0 {
			inv := 1 / float32(len(ns))
			for j := range orow {
				orow[j] *= inv
			}
		}
	}
}

// KernelSweep renders the precision × pipeline kernel matrix: wall time,
// store bytes moved, and heap allocations per batch for producing the
// layer-0 aggregated tensors (§3 opt iii / §4.2 extension).
func KernelSweep(o KernelOpts) (Table, error) {
	o.defaults()
	t := Table{
		ID:     "kernels",
		Title:  "Gather kernels: precision × pipeline cost of the layer-0 aggregate",
		Header: []string{"Precision", "Pipeline", "Batches", "us/batch", "KB moved/batch", "Allocs/batch"},
	}
	results, err := kernelResults(o)
	if err != nil {
		return t, err
	}
	for _, r := range results {
		t.AddRow(r.Precision, r.Pipeline,
			fmt.Sprintf("%d", r.Batches),
			fmt.Sprintf("%.1f", r.UsPerB),
			fmt.Sprintf("%.1f", r.KBMovedPB),
			fmt.Sprintf("%.2f", r.AllocsPB),
		)
	}
	t.AddNote("identical pre-sampled batches per cell (scale %g, batch %d, fanouts %v, %d rounds, best of %d interleaved reps); staged = Gather+decode+aggregate, fused = GatherAggregate (bit-identical outputs)",
		o.Scale, o.BatchSize, o.Fanouts, o.Rounds, kernelReps)
	t.AddNote("KB moved counts stored row bytes at the cell's precision: fp32 = 4B/scalar, fp16 = 2B, int8 = 1B + 4B/row scale")
	return t, nil
}

// KernelSweepJSON runs the sweep and writes the results as a JSON array —
// the machine-readable BENCH_kernels.json artifact CI uploads per commit.
func KernelSweepJSON(w io.Writer, o KernelOpts) error {
	results, err := kernelResults(o)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}
