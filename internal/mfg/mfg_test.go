package mfg

import "testing"

// tiny builds a valid 2-layer MFG by hand:
//
//	seeds {0}; hop1 discovers nodes 1,2; hop2 discovers node 3.
func tiny() *MFG {
	return &MFG{
		Batch:   1,
		NodeIDs: []int32{10, 20, 30, 40}, // globals for locals 0..3
		Blocks: []Block{
			// Outer block: dst = {0,1,2}, src = {0..3}.
			{DstPtr: []int32{0, 1, 2, 3}, Src: []int32{1, 3, 0}, NumDst: 3, NumSrc: 4},
			// Inner block: dst = {0}, src = {0,1,2}.
			{DstPtr: []int32{0, 2}, Src: []int32{1, 2}, NumDst: 1, NumSrc: 3},
		},
	}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	if err := tiny().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAccessors(t *testing.T) {
	m := tiny()
	if m.Layers() != 2 {
		t.Fatalf("Layers = %d", m.Layers())
	}
	if m.TotalNodes() != 4 {
		t.Fatalf("TotalNodes = %d", m.TotalNodes())
	}
	if m.TotalEdges() != 5 {
		t.Fatalf("TotalEdges = %d", m.TotalEdges())
	}
	b := &m.Blocks[1]
	if b.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d", b.NumEdges())
	}
	ns := b.Neighbors(0)
	if len(ns) != 2 || ns[0] != 1 || ns[1] != 2 {
		t.Fatalf("Neighbors(0) = %v", ns)
	}
}

func TestTransferBytes(t *testing.T) {
	m := tiny()
	// 4 nodes × 8 feats × 2 bytes = 64; labels 1×8 = 8;
	// edges (3+2)×8 = 40; dstPtr (4+2)×4 = 24. Total 136.
	if got := m.TransferBytes(8, 2); got != 136 {
		t.Fatalf("TransferBytes = %d, want 136", got)
	}
	// The row-width variant agrees with TransferBytes when rows are a whole
	// number of bytes per scalar...
	if got, want := m.TransferBytesRows(16), m.TransferBytes(8, 2); got != want {
		t.Fatalf("TransferBytesRows(16) = %d, want %d", got, want)
	}
	// ...and accounts int8's per-row scale exactly: 4 nodes × (8+4) = 48
	// feature bytes in place of 64.
	if got := m.TransferBytesRows(12); got != 136-64+48 {
		t.Fatalf("TransferBytesRows(12) = %d, want %d", got, 136-64+48)
	}
}

func TestValidateRejections(t *testing.T) {
	mutations := []struct {
		name string
		fn   func(*MFG)
	}{
		{"no blocks", func(m *MFG) { m.Blocks = nil }},
		{"batch mismatch", func(m *MFG) { m.Batch = 2 }},
		{"nodeIDs short", func(m *MFG) { m.NodeIDs = m.NodeIDs[:2] }},
		{"dst>src", func(m *MFG) { m.Blocks[1].NumDst = 5; m.Blocks[1].DstPtr = []int32{0, 0, 0, 0, 1, 2} }},
		{"dstptr len", func(m *MFG) { m.Blocks[0].DstPtr = m.Blocks[0].DstPtr[:2] }},
		{"dstptr end", func(m *MFG) { m.Blocks[0].DstPtr[3] = 1 }},
		{"dstptr monotone", func(m *MFG) { m.Blocks[0].DstPtr = []int32{0, 2, 1, 3} }},
		{"src out of range", func(m *MFG) { m.Blocks[0].Src[0] = 9 }},
		{"src negative", func(m *MFG) { m.Blocks[0].Src[0] = -1 }},
		{"chain break", func(m *MFG) {
			m.Blocks[1].NumSrc = 2
			m.Blocks[1].Src = []int32{1, 1}
		}},
	}
	for _, mu := range mutations {
		m := tiny()
		mu.fn(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: corrupt MFG passed validation", mu.name)
		}
	}
}

func TestCloneDetachesStorage(t *testing.T) {
	m := &MFG{
		Blocks: []Block{{
			DstPtr: []int32{0, 2, 3},
			Src:    []int32{1, 2, 0},
			NumDst: 2,
			NumSrc: 3,
		}},
		NodeIDs: []int32{10, 11, 12},
		Batch:   2,
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	c := m.Clone()
	if err := c.Validate(); err != nil {
		t.Fatalf("clone invalid: %v", err)
	}
	// Mutating the original must not affect the clone.
	m.NodeIDs[0] = 99
	m.Blocks[0].Src[0] = 2
	if c.NodeIDs[0] != 10 || c.Blocks[0].Src[0] != 1 {
		t.Fatal("clone aliases original storage")
	}
	if c.TotalNodes() != 3 || c.TotalEdges() != 3 || c.Batch != 2 {
		t.Fatalf("clone shape wrong: %d nodes %d edges", c.TotalNodes(), c.TotalEdges())
	}
}
