package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	goanalysis "golang.org/x/tools/go/analysis"
)

// snapshotScope lists the epoch-scoped consumers: they pin ONE snapshot per
// epoch (ddp: per epoch across all replicas; prep: per Run) and pass the
// pinned Topology down. Serving intentionally re-pins per micro-batch and
// is not in scope.
var snapshotScope = map[string]bool{
	"train": true,
	"ddp":   true,
	"prep":  true,
}

// SnapshotPin enforces the PR-5 pinning discipline: inside epoch/step loop
// bodies in train/ddp/prep, no Snapshot() calls — a mid-epoch re-pin would
// observe concurrent graph mutations and break the bit-reproducibility
// oracle (and the zero-alloc gather, which relies on the overlay being
// merged once at pin time). Calling Snapshot() on an already-pinned
// *graph.Snapshot is free (it returns itself) and stays legal.
var SnapshotPin = &goanalysis.Analyzer{
	Name: "snapshotpin",
	Doc:  "forbid Snapshot() re-pinning inside epoch/step loops in train/ddp/prep; pin once and pass the pinned Topology down",
	Run:  runSnapshotPin,
}

func runSnapshotPin(pass *goanalysis.Pass) (interface{}, error) {
	if !snapshotScope[pkgBase(pass.Pkg.Path())] {
		return nil, nil
	}
	idx := buildAllowIndex(pass)
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		// Collect loop-body extents, then flag Snapshot() calls inside any.
		var loops []struct{ pos, end token.Pos }
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.ForStmt:
				body = n.Body
			case *ast.RangeStmt:
				body = n.Body
			}
			if body != nil {
				loops = append(loops, struct{ pos, end token.Pos }{body.Pos(), body.End()})
			}
			return true
		})
		if len(loops) == 0 {
			continue
		}
		inLoop := func(p token.Pos) bool {
			for _, l := range loops {
				if l.pos <= p && p < l.end {
					return true
				}
			}
			return false
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !inLoop(call.Pos()) {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Snapshot" {
				return true
			}
			s := pass.TypesInfo.Selections[sel]
			if s == nil || s.Kind() != types.MethodVal {
				return true
			}
			m := s.Obj()
			if m.Pkg() == nil || !strings.HasSuffix(m.Pkg().Path(), graphPkgSuffix) {
				return true
			}
			if namedRecv(s.Recv()) == "Snapshot" {
				return true // (*Snapshot).Snapshot returns itself: already pinned
			}
			report(pass, idx, call.Pos(),
				"Snapshot() inside a loop body re-pins the graph mid-epoch: pin one snapshot before the loop and pass the pinned graph.Topology down")
			return true
		})
	}
	return nil, nil
}
