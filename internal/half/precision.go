package half

import (
	"fmt"
	"math"
)

// Precision selects the on-host storage width of a feature row. The zero
// value is FP16 — the paper's baseline optimization iii and the seed layout —
// so existing wiring that never mentions precision keeps its behavior.
//
// Compute always runs float32; precision only changes what the host stores
// and what a gather must move and widen:
//
//   - FP16: 2 bytes/scalar, widened exactly (every binary16 is a binary32).
//   - FP32: 4 bytes/scalar, stored as computed (the no-compression control).
//   - Int8: 1 byte/scalar plus one float32 scale per row (symmetric per-row
//     quantization, q = round(x/scale) with scale = maxAbs/127), dequantized
//     on gather as float32(q)·scale.
type Precision int

const (
	FP16 Precision = iota
	FP32
	Int8
)

// String returns the flag spelling of p ("fp16", "fp32", "int8").
func (p Precision) String() string {
	switch p {
	case FP32:
		return "fp32"
	case Int8:
		return "int8"
	default:
		return "fp16"
	}
}

// ParsePrecision parses the flag spelling of a precision. The empty string
// selects FP16, the seed default.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "", "fp16":
		return FP16, nil
	case "fp32":
		return FP32, nil
	case "int8":
		return Int8, nil
	}
	return FP16, fmt.Errorf("half: unknown precision %q (want fp16, fp32, or int8)", s)
}

// Valid reports whether p is one of the defined precisions.
func (p Precision) Valid() bool {
	return p == FP16 || p == FP32 || p == Int8
}

// RowBytes returns the host bytes one feature row of the given
// dimensionality occupies at this precision, including the int8 row's
// float32 scale. This is the row width every store's transfer accounting is
// parameterized on (fp32 = 4·dim, fp16 = 2·dim, int8 = dim + 4).
func (p Precision) RowBytes(dim int) int64 {
	switch p {
	case FP32:
		return int64(dim) * 4
	case Int8:
		return int64(dim) + 4
	default:
		return int64(dim) * 2
	}
}

// QuantizeRow quantizes src into dst with symmetric per-row int8
// quantization and returns the row's scale: scale = maxAbs/127,
// q = round-to-nearest-even(x/scale), clamped to [-127, 127]. An all-zero
// row gets scale 0 (dequantizes back to exact zeros). dst must have len(src)
// capacity.
//
// Non-finite inputs saturate: ±Inf clamps to ±127 and NaN quantizes to 0 —
// feature matrices are expected to be finite, and saturation keeps the codec
// total so fuzzing can round-trip arbitrary bytes.
func QuantizeRow(dst []int8, src []float32) float32 {
	dst = dst[:len(src)]
	maxAbs := float32(0)
	for _, f := range src {
		a := f
		if a < 0 {
			a = -a
		}
		if a > maxAbs { // NaN compares false, so it never sets the scale
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return 0
	}
	if maxAbs > math.MaxFloat32 { // +Inf in the row: keep the scale finite
		maxAbs = math.MaxFloat32
	}
	scale := maxAbs / 127
	inv := 1 / scale
	for i, f := range src {
		q := roundHalfEven(f * inv)
		if q > 127 {
			q = 127
		} else if q < -127 {
			q = -127
		}
		dst[i] = int8(q)
	}
	return scale
}

// DequantizeRow widens a quantized row back to float32: dst[i] =
// float32(q[i])·scale. This exact expression is shared by the staged decode
// and the fused gather+aggregate kernels, so the two paths accumulate
// bit-identical values. dst must have len(q) capacity; it returns
// dst[:len(q)].
func DequantizeRow(dst []float32, q []int8, scale float32) []float32 {
	dst = dst[:len(q)]
	for i, v := range q {
		dst[i] = float32(v) * scale
	}
	return dst
}

// roundHalfEven rounds x to the nearest int32, ties to even (matching the
// FP16 codec's rounding mode). NaN rounds to 0; values beyond int32 range
// saturate (callers clamp to [-127,127] anyway).
func roundHalfEven(x float32) int32 {
	switch {
	case x != x: // NaN
		return 0
	case x >= 2147483520:
		return 2147483647
	case x <= -2147483520:
		return -2147483648
	}
	n := int32(x)
	frac := x - float32(n)
	switch {
	case frac > 0.5 || (frac == 0.5 && n&1 != 0):
		n++
	case frac < -0.5 || (frac == -0.5 && n&1 != 0):
		n--
	}
	return n
}
