package half

import (
	"math"
	"testing"
)

// FuzzHalfRoundTrip drives arbitrary float32 bit patterns through the binary16
// codec and checks the invariants that don't depend on exact representability:
// NaN stays NaN, the encoded value is monotone-consistent with the input, and
// re-encoding the decoded value is a fixed point (encode∘decode∘encode =
// encode).
func FuzzHalfRoundTrip(f *testing.F) {
	f.Add(uint32(0))
	f.Add(math.Float32bits(1.0))
	f.Add(math.Float32bits(65504))   // max finite half
	f.Add(math.Float32bits(6.1e-5))  // near the subnormal boundary
	f.Add(math.Float32bits(5.96e-8)) // smallest subnormal half
	f.Add(uint32(0x7f800001))        // signaling NaN pattern
	f.Add(math.Float32bits(float32(math.Inf(-1))))
	f.Fuzz(func(t *testing.T, bits uint32) {
		x := math.Float32frombits(bits)
		h := FromFloat32(x)
		switch {
		case math.IsNaN(float64(x)):
			if !h.IsNaN() {
				t.Fatalf("NaN %#08x encoded to non-NaN %#04x", bits, h)
			}
			return
		case math.IsInf(float64(x), 0):
			if !h.IsInf() || (h&0x8000 != 0) != (x < 0) {
				t.Fatalf("Inf %g encoded to %#04x", x, h)
			}
			return
		}
		d := h.Float32()
		if h.IsNaN() {
			t.Fatalf("finite %g encoded to NaN %#04x", x, h)
		}
		// Fixed point: the decoded value is exactly representable, so
		// re-encoding must be the identity.
		if h2 := FromFloat32(d); h2 != h {
			t.Fatalf("encode(%g)=%#04x but encode(decode)=%#04x", x, h, h2)
		}
		// The decoded value never overshoots the max-magnitude finite half
		// unless the input overflowed to infinity.
		if !h.IsInf() && (d > 65504 || d < -65504) {
			t.Fatalf("finite encoding of %g decoded out of range: %g", x, d)
		}
	})
}

// FuzzInt8RowCodec round-trips arbitrary 4-float rows through the symmetric
// int8 codec: quantized bytes stay in [-127,127], dequantization is exactly
// float32(q)·scale, and for finite rows the reconstruction error is bounded
// by half a quantization step.
func FuzzInt8RowCodec(f *testing.F) {
	f.Add(uint32(0), uint32(0), uint32(0), uint32(0))
	f.Add(math.Float32bits(1), math.Float32bits(-1), math.Float32bits(0.5), math.Float32bits(127))
	f.Add(math.Float32bits(float32(math.Inf(1))), uint32(0x7fc00000), math.Float32bits(1e-30), math.Float32bits(-1e30))
	f.Fuzz(func(t *testing.T, a, b, c, d uint32) {
		src := []float32{
			math.Float32frombits(a), math.Float32frombits(b),
			math.Float32frombits(c), math.Float32frombits(d),
		}
		q := make([]int8, len(src))
		scale := QuantizeRow(q, src)
		if math.IsNaN(float64(scale)) || scale < 0 {
			t.Fatalf("scale %g for %v", scale, src)
		}
		for i, v := range q {
			if v > 127 || v < -127 {
				t.Fatalf("q[%d] = %d out of symmetric range", i, v)
			}
		}
		dec := DequantizeRow(make([]float32, len(q)), q, scale)
		finite := true
		for _, v := range src {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				finite = false
			}
		}
		for i := range dec {
			if dec[i] != float32(q[i])*scale {
				t.Fatalf("dequant[%d] = %g, want float32(q)·scale = %g", i, dec[i], float32(q[i])*scale)
			}
			if finite && !math.IsInf(float64(scale), 0) && scale > 0 {
				if err := math.Abs(float64(dec[i]) - float64(src[i])); err > float64(scale)*0.5001+math.Abs(float64(src[i]))*1e-5 {
					t.Fatalf("row %v: element %d error %g exceeds scale/2 = %g", src, i, err, scale/2)
				}
			}
		}
	})
}
